//! Smoke test for the `table3 --json` serialization seam: a tiny-budget
//! matrix run must emit a JSON document that parses and covers all 32
//! Table 3 cells with the full field set.  CI runs the actual binary with
//! the same tiny budget; this test validates the document shape.

use revizor::orchestrator::CampaignMatrix;
use rvz_bench::json::{parse, Json};
use rvz_bench::matrix_report_json;
use std::collections::BTreeSet;

#[test]
fn tiny_budget_table3_json_parses_and_covers_all_32_cells() {
    let budget = 2;
    let report = CampaignMatrix::table3(3).with_budget(budget).run();
    let rendered = matrix_report_json(&report, budget).render_pretty();

    let doc = parse(&rendered).expect("emitted JSON must parse");
    assert_eq!(doc.get("budget").and_then(Json::as_f64), Some(2.0));
    assert_eq!(doc.get("seed").and_then(Json::as_f64), Some(3.0));
    assert!(doc.get("duration_ms").and_then(Json::as_f64).is_some());
    assert!(doc.get("measured_test_cases").and_then(Json::as_f64).is_some());
    // Filtering is off here, so every generated test case was measured.
    assert_eq!(doc.get("statically_filtered").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        doc.get("generated_test_cases").and_then(Json::as_f64),
        doc.get("measured_test_cases").and_then(Json::as_f64),
    );

    let cells = doc.get("cells").and_then(Json::as_array).expect("cells array");
    assert_eq!(cells.len(), 32, "8 targets x 4 contracts");

    let mut seen: BTreeSet<(u8, String)> = BTreeSet::new();
    for cell in cells {
        let target = cell.get("target").and_then(Json::as_f64).expect("target id") as u8;
        let contract = cell.get("contract").and_then(Json::as_str).expect("contract").to_string();
        assert!((1..=8).contains(&target));
        assert!(contract.starts_with("CT-"));
        let found = cell.get("found").and_then(Json::as_bool).expect("found flag");
        match cell.get("vulnerability").expect("vulnerability field") {
            Json::Null => {}
            Json::Str(label) => {
                assert!(found, "a vulnerability label implies a violation, got {label}");
            }
            other => panic!("vulnerability must be a string or null, got {other}"),
        }
        match cell.get("gadget_class").expect("gadget_class field") {
            Json::Null => {}
            Json::Str(_) => assert!(found, "a gadget class implies a violation"),
            other => panic!("gadget_class must be a string or null, got {other}"),
        }
        let tcs = cell.get("test_cases").and_then(Json::as_f64).expect("test_cases");
        assert!(tcs <= budget as f64);
        assert_eq!(cell.get("statically_filtered").and_then(Json::as_f64), Some(0.0));
        let eff = cell.get("effectiveness").expect("effectiveness object");
        for field in ["total_inputs", "effective_inputs", "classes", "singleton_classes"] {
            assert!(eff.get(field).and_then(Json::as_f64).is_some(), "effectiveness.{field}");
        }
        assert!(cell.get("duration_ms").and_then(Json::as_f64).is_some());
        assert_eq!(cell.get("seed").and_then(Json::as_f64), Some(3.0));
        seen.insert((target, contract));
    }
    assert_eq!(seen.len(), 32, "every (target, contract) cell appears exactly once");
}

#[test]
fn filtered_run_reports_its_filter_counters() {
    // Same tiny matrix with the static pre-filter on: the JSON must account
    // for every generated test case as either measured or filtered.
    let budget = 2;
    let report = CampaignMatrix::table3(3).with_budget(budget).with_speculation_filter(true).run();
    let doc = parse(&matrix_report_json(&report, budget).render_pretty()).unwrap();

    let generated = doc.get("generated_test_cases").and_then(Json::as_f64).unwrap();
    let measured = doc.get("measured_test_cases").and_then(Json::as_f64).unwrap();
    let filtered = doc.get("statically_filtered").and_then(Json::as_f64).unwrap();
    assert_eq!(generated, measured + filtered);
    // Target 1 generates arithmetic-only programs — all filterable — so a
    // table3 matrix always filters something.
    assert!(filtered > 0.0);
}

#[test]
fn compact_rendering_parses_too() {
    let report = CampaignMatrix::table3(1).with_budget(1).run();
    let compact = matrix_report_json(&report, 1).render();
    assert_eq!(parse(&compact).unwrap(), parse(&matrix_report_json(&report, 1).render_pretty()).unwrap());
}
