//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of rayon's API the fuzzer uses: `ThreadPoolBuilder` /
//! `ThreadPool::install`, `into_par_iter().map(..).collect()` over vectors,
//! and `current_num_threads`.  Parallelism is implemented with
//! `std::thread::scope`: items are split into one contiguous chunk per
//! worker, mapped on scoped threads, and re-assembled in order, so `collect`
//! preserves input order exactly as rayon's indexed collect does.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations on this thread will use.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size;
/// outside it defaults to `std::thread::available_parallelism`.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|p| p.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Error returned by [`ThreadPoolBuilder::build`]; never produced by the stub.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`] (subset of `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads; `0` means auto-detect, as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.  The stub cannot fail, but keeps rayon's fallible
    /// signature so call sites stay source-compatible.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: records a thread count that parallel operations
/// executed under [`ThreadPool::install`] will use.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|p| p.replace(Some(self.num_threads)));
        let result = op();
        POOL_THREADS.with(|p| p.set(prev));
        result
    }

    /// The configured number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Conversion into a parallel iterator (subset of rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type produced.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over an owned `Vec` (rayon's `vec::IntoIter` analogue).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each element through `f`, to be executed in parallel at collect
    /// time.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MapParIter<T, R, F> {
        MapParIter { items: self.items, f, _out: PhantomData }
    }
}

/// The result of [`ParIter::map`]: a deferred parallel map.
pub struct MapParIter<T, R, F> {
    items: Vec<T>,
    f: F,
    _out: PhantomData<R>,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MapParIter<T, R, F> {
    /// Execute the map across [`current_num_threads`] scoped threads and
    /// collect the results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let threads = current_num_threads().max(1);
        let len = self.items.len();
        if threads <= 1 || len <= 1 {
            return C::from_ordered(self.items.into_iter().map(self.f).collect());
        }
        let chunk_len = len.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk_len));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let f = &self.f;
        let mapped: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("rayon stub worker panicked")).collect()
        });
        C::from_ordered(mapped.into_iter().flatten().collect())
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Build the collection from results already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_sets_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
        let out: Vec<u32> =
            pool.install(|| (0..10).collect::<Vec<u32>>().into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_means_auto() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
