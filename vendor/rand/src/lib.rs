//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! an API-compatible subset of `rand`: [`rngs::SmallRng`] (xoshiro256**
//! seeded through SplitMix64), the [`Rng`]/[`SeedableRng`] traits, and
//! [`seq::SliceRandom`].  Streams are deterministic for a given seed, which
//! is all the fuzzer requires — reproducibility, not statistical quality or
//! bit-compatibility with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full bit pattern of a
/// generator (the stub's replacement for `Standard: Distribution<T>`).
pub trait FromRng: Sized {
    /// Sample a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform draw from the inclusive range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high, "gen_range: empty range");
                let span = (high as i128) - (low as i128) + 1;
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`] (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a single uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + One + std::ops::Sub<Output = T>> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end - T::one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for exclusive ranges: the multiplicative identity of an integer.
pub trait One {
    /// The value `1`.
    fn one() -> Self;
}

macro_rules! one_int {
    ($($t:ty),*) => {$(impl One for $t { fn one() -> Self { 1 } })*};
}
one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the generator's raw bits.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::from_bits_random(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Internal helper so `gen_bool` can reuse the `f64` mapping.
trait F64Bits {
    fn from_bits_random(bits: u64) -> f64;
}

impl F64Bits for f64 {
    fn from_bits_random(bits: u64) -> f64 {
        <f64 as FromRng>::from_bits(bits)
    }
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256** seeded through SplitMix64.
    ///
    /// Deterministic for a given seed; not bit-compatible with upstream
    /// `rand`'s `SmallRng`, which the workspace never relies on.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (subset of `rand::seq`).

    use super::Rng;

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the underlying slice.
        type Item;

        /// Uniformly choose a reference to one element, `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-128..128);
            assert!((-128..128).contains(&v));
            let u: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&u));
            let w: u8 = rng.gen_range(0..=255);
            let _ = w;
        }
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..16).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
