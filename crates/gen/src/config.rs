//! Generator configuration.

use crate::scenario::Scenario;
use rvz_isa::{IsaSubset, Reg};
use serde::{Deserialize, Serialize};

/// Configuration of the test-case generator (§5.1) and the input generator
/// (§5.2).
///
/// The defaults follow the paper's starting configuration (§6.1): 8
/// instructions, 2 memory accesses and 2 basic blocks per test case, 2 bits
/// of input entropy, 50 inputs per test case; the diversity analysis grows
/// these over testing rounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// ISA subset to sample instructions from.
    pub isa: IsaSubset,
    /// Target number of *random* instructions per test case (instrumentation
    /// instructions such as address masks come on top, as in Figure 3).
    pub instructions: usize,
    /// Number of basic blocks.
    pub basic_blocks: usize,
    /// Minimum number of memory-accessing instructions (only relevant when
    /// the subset includes `MEM`).
    pub memory_accesses: usize,
    /// Registers the generated code may use freely (the paper restricts the
    /// generator to four registers to improve input effectiveness).
    pub registers: Vec<Reg>,
    /// Number of 4 KiB sandbox data pages (1 or 2).
    pub sandbox_pages: u64,
    /// Entropy (in bits) of generated input values; lower entropy gives
    /// higher input effectiveness.
    pub input_entropy_bits: u32,
    /// Number of inputs generated per test case.
    pub inputs_per_test_case: usize,
    /// Randomize the cache-line offset added to masked addresses (the same
    /// offset within a test case, different across test cases).
    pub randomize_line_offset: bool,
    /// Place memory-accessing instructions only in blocks *after* the entry
    /// block (detection-speed tuning).  Speculative leaks need a memory
    /// access on a mispredicted path — i.e. *behind* a branch — but the
    /// uniform round-robin placement parks a large share of the memory
    /// accesses in the entry block, where they execute before any branch
    /// and can never leak speculatively.  The bias moves them behind the
    /// entry block's terminator without consuming any generator randomness,
    /// so all other generation decisions are unchanged for a given seed.
    /// It only takes effect for ISA subsets with conditional branches
    /// (elsewhere there is no mispredicted path to hide a load behind, and
    /// the displacement measurably *hurts* assist-based detection).
    /// Off by default (the paper's generator is unbiased); enabled by the
    /// campaign orchestrator's detection-tuned configuration.  Measured on
    /// Target 5 × CT-SEQ (orchestrator defaults, seeds 0–7): first V1 at
    /// 15/68/142/105/6/150/80/157 test cases unbiased vs 15/16/4/12/4/29/1/20
    /// biased — a ~7× mean speedup.
    pub branch_then_load_bias: bool,
    /// Pin generation to a handwritten scenario gadget instead of random
    /// programs (the seed still varies the input streams).  `None` — the
    /// default, and the value absent pre-zoo configurations decode to —
    /// keeps the random generator.
    #[serde(default)]
    pub scenario: Option<Scenario>,
}

impl GeneratorConfig {
    /// The paper's initial configuration (§6.1).
    pub fn paper_initial() -> GeneratorConfig {
        GeneratorConfig {
            isa: IsaSubset::AR_MEM_CB,
            instructions: 8,
            basic_blocks: 2,
            memory_accesses: 2,
            registers: Reg::GENERATOR_SET.to_vec(),
            sandbox_pages: 1,
            input_entropy_bits: 2,
            inputs_per_test_case: 50,
            randomize_line_offset: true,
            branch_then_load_bias: false,
            scenario: None,
        }
    }

    /// Initial configuration restricted to a particular ISA subset.
    pub fn for_subset(isa: IsaSubset) -> GeneratorConfig {
        GeneratorConfig { isa, ..GeneratorConfig::paper_initial() }
    }

    /// Grow the configuration for the next testing round, as the diversity
    /// analysis does when pattern coverage stalls (§5.6): more instructions,
    /// more basic blocks and more inputs per test case (e.g. 8/2/50 →
    /// 15/3/75 in the paper's example).  The input entropy is left alone —
    /// raising it would lower input effectiveness (§5.2).
    pub fn escalate(&mut self) {
        self.instructions = (self.instructions * 3 / 2).max(self.instructions + 2).min(64);
        self.basic_blocks = (self.basic_blocks + 1).min(8);
        self.memory_accesses = (self.memory_accesses + 1).min(16);
        self.inputs_per_test_case = (self.inputs_per_test_case * 3 / 2).min(200);
    }

    /// Builder: set the instruction count.
    pub fn with_instructions(mut self, n: usize) -> GeneratorConfig {
        self.instructions = n;
        self
    }

    /// Builder: set the basic-block count.
    pub fn with_basic_blocks(mut self, n: usize) -> GeneratorConfig {
        self.basic_blocks = n.max(1);
        self
    }

    /// Builder: set the number of inputs per test case.
    pub fn with_inputs(mut self, n: usize) -> GeneratorConfig {
        self.inputs_per_test_case = n.max(2);
        self
    }

    /// Builder: set the input entropy.
    pub fn with_entropy(mut self, bits: u32) -> GeneratorConfig {
        self.input_entropy_bits = bits;
        self
    }

    /// Builder: enable or disable the branch-then-load placement bias.
    pub fn with_branch_then_load_bias(mut self, bias: bool) -> GeneratorConfig {
        self.branch_then_load_bias = bias;
        self
    }

    /// Builder: pin generation to a scenario gadget.
    pub fn with_scenario(mut self, scenario: Scenario) -> GeneratorConfig {
        self.scenario = Some(scenario);
        self
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::paper_initial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_initial_matches_section_6_1() {
        let c = GeneratorConfig::paper_initial();
        assert_eq!(c.instructions, 8);
        assert_eq!(c.basic_blocks, 2);
        assert_eq!(c.memory_accesses, 2);
        assert_eq!(c.input_entropy_bits, 2);
        assert_eq!(c.inputs_per_test_case, 50);
        assert_eq!(c.registers.len(), 4);
    }

    #[test]
    fn escalate_grows_sizes_but_not_entropy() {
        let mut c = GeneratorConfig::paper_initial();
        let before = c.clone();
        c.escalate();
        assert!(c.instructions > before.instructions);
        assert!(c.basic_blocks > before.basic_blocks);
        assert!(c.inputs_per_test_case > before.inputs_per_test_case);
        assert_eq!(c.input_entropy_bits, before.input_entropy_bits);
    }

    #[test]
    fn escalate_saturates() {
        let mut c = GeneratorConfig::paper_initial();
        for _ in 0..30 {
            c.escalate();
        }
        assert!(c.instructions <= 64);
        assert!(c.basic_blocks <= 8);
        assert!(c.inputs_per_test_case <= 200);
    }

    #[test]
    fn builders() {
        let c = GeneratorConfig::for_subset(IsaSubset::AR)
            .with_instructions(12)
            .with_basic_blocks(3)
            .with_inputs(10)
            .with_entropy(4);
        assert_eq!(c.isa, IsaSubset::AR);
        assert_eq!(c.instructions, 12);
        assert_eq!(c.basic_blocks, 3);
        assert_eq!(c.inputs_per_test_case, 10);
        assert_eq!(c.input_entropy_bits, 4);
    }
}
