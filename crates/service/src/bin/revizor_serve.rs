//! The campaign server: serve Revizor fuzzing campaigns over TCP.
//!
//! ```text
//! revizor-serve [--addr=127.0.0.1:15790] [--spool=DIR] [--shards=N] [--checkpoint-every=N]
//!               [--coordinator] [--worker-addr=127.0.0.1:15791]
//! ```
//!
//! * `--addr` — listen address (use port `0` for an ephemeral port; the
//!   bound address is printed on startup).
//! * `--spool` — durable job state; a restarted server resumes every
//!   unfinished job from here with byte-identical verdicts.
//! * `--shards` — long-lived worker threads, all draining one shared
//!   queue (highest priority first, FIFO within a priority).
//! * `--checkpoint-every` — waves between spool checkpoints (default 1).
//!   Ignored in multi-host mode, which always persists every replicated
//!   wave (the at-most-one-wave-behind failover guarantee).
//! * `--coordinator` / `--worker-addr` — **multi-host mode**: listen for
//!   `revizor-worker` hosts (on `--worker-addr`, default
//!   `127.0.0.1:15791`) and dispatch jobs to them instead of running
//!   local shard threads.  Worker checkpoints are replicated into the
//!   spool after every wave, so a killed worker's job is reassigned and
//!   resumes with byte-identical verdicts.
//! * `--worker-timeout` — seconds an assigned worker may stay silent
//!   before it is declared partitioned and its job requeued (default
//!   120; workers send at least one frame per wave).
//!
//! The wire protocol (newline-delimited JSON) is documented in
//! `rvz_service::server`; submit with `revizor-submit` or any line-based
//! TCP client.

use rvz_bench::flag_value_from_args;
use rvz_service::{ServiceConfig, ServiceHandle};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let addr =
        flag_value_from_args::<String>("--addr").unwrap_or_else(|| "127.0.0.1:15790".to_string());
    let spool = flag_value_from_args::<String>("--spool").map(PathBuf::from);
    let shards = flag_value_from_args::<usize>("--shards").unwrap_or(2);
    let checkpoint_every = flag_value_from_args::<usize>("--checkpoint-every").unwrap_or(1);
    let worker_listen = flag_value_from_args::<String>("--worker-addr").or_else(|| {
        rvz_bench::flag_from_args("--coordinator").then(|| "127.0.0.1:15791".to_string())
    });

    let mut config = ServiceConfig {
        shards,
        spool: spool.clone(),
        checkpoint_every,
        listen: Some(addr),
        worker_listen,
        ..ServiceConfig::default()
    };
    if let Some(secs) = flag_value_from_args::<u64>("--worker-timeout") {
        config.worker_timeout = std::time::Duration::from_secs(secs);
    }
    let handle = match ServiceHandle::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("revizor-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let bound = handle.local_addr().expect("listen address configured");
    let backend = match handle.worker_addr() {
        Some(worker_addr) => format!("coordinator; workers on {worker_addr}"),
        None => format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
    };
    eprintln!(
        "revizor-serve: listening on {bound} ({backend}, spool: {})",
        spool.as_deref().map(|p| p.display().to_string()).unwrap_or_else(|| "none".to_string()),
    );
    let resumed = handle.core().list();
    if !resumed.is_empty() {
        eprintln!("revizor-serve: {} job(s) loaded from the spool", resumed.len());
    }

    // Serve until killed; the spool makes an abrupt kill safe (unfinished
    // jobs resume on the next start).
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}
