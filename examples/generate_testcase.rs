//! Test-case and input generation (§5.1, §5.2): prints a Figure-3-style
//! randomly generated program for each ISA subset, and shows how the
//! low-entropy input generator creates colliding contract traces
//! ("effective inputs").
//!
//! Run with: `cargo run --release --example generate_testcase [seed]`

use revizor_suite::prelude::*;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2022);

    for isa in [IsaSubset::AR, IsaSubset::AR_MEM, IsaSubset::AR_MEM_CB, IsaSubset::AR_MEM_CB_VAR] {
        let config = GeneratorConfig::for_subset(isa).with_basic_blocks(3).with_instructions(10);
        let tc = ProgramGenerator::new(config).generate(seed);
        println!("=== {} (seed {seed}) ===", isa.name());
        println!("{}", tc.to_asm());
    }

    // Input effectiveness: how many of 50 low-entropy inputs share a
    // CT-SEQ contract trace (only those can form counterexamples, CH2).
    let config = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB);
    let tc = ProgramGenerator::new(config).generate(seed);
    let model = ContractModel::new(Contract::ct_seq());
    println!("=== Input effectiveness for different PRNG entropies ===");
    for entropy in [1u32, 2, 4, 8] {
        let inputs = InputGenerator::new(entropy).generate(&tc, seed, 50);
        let ctraces: Vec<_> =
            inputs.iter().filter_map(|i| model.collect_trace(&tc, i).ok()).collect();
        let analyzer = Analyzer::new();
        let classes = analyzer.input_classes(&ctraces);
        let stats = analyzer.effectiveness(&classes, ctraces.len());
        println!(
            "entropy {entropy} bits: {:2} classes, {:2}/{} effective inputs ({:.0}%)",
            stats.classes,
            stats.effective_inputs,
            stats.total_inputs,
            stats.effectiveness() * 100.0
        );
    }
    println!("\n(lower entropy -> more colliding contract traces -> higher effectiveness, §5.2)");
}
