//! Static taint analysis over test-case programs.
//!
//! A forward may-taint dataflow pass over the basic-block DAG answers, per
//! test case and *before* any model or hardware measurement: **can any
//! speculation source reach a transmitter?**  Speculation sources are the
//! events a real CPU (or the contract model's execution clauses) may
//! mis-speculate on:
//!
//! * conditional branch terminators (`COND` misprediction, Spectre V1);
//! * indirect jumps and returns (BTB/RSB misprediction, V2 / V5-ret);
//! * loads that may bypass an older store (`BPAS`, Spectre V4);
//! * loads that may trigger a microcode assist (MDS / LVI);
//! * variable-latency `DIV` feeding a speculative access (the latency
//!   variants of Figure 5 / §6.3).
//!
//! Transmitters are observations that can differ between two inputs whose
//! sequential contract traces are equal: a memory access whose address is
//! data-dependent on a tainted value, or — because CT observation exposes
//! the program counter — a further input-dependent branch inside a
//! speculative window.
//!
//! The lattice is a per-location may-taint bit (monotone join = OR) over the
//! sixteen general-purpose registers, the status flags, and the sandbox
//! memory as a single cell.  Inputs initialize every non-reserved register,
//! the flags, and all of sandbox memory ([`rvz_gen::InputGenerator`]
//! randomizes all of them), so the *input* layer starts fully tainted and
//! only immediate moves introduce untainted values.  Two further layers
//! track values that are only transiently wrong: *bypass* taint (stale
//! values a load may observe by bypassing an older store) and *assist* taint
//! (values transiently forwarded by an assisted load).  A fourth layer
//! records whether a value passed through a load at all, which the gadget
//! classifier uses to recognize dependent-chain shapes.
//!
//! **Soundness argument.** A confirmed violation needs two inputs with equal
//! contract traces and diverging hardware traces, and the model-side
//! equivalent needs equal CT-SEQ traces with diverging speculative-contract
//! traces.  Divergence can only enter through a speculative window (equal
//! sequential traces fix the architectural path and all architectural
//! addresses), and inside a window it can only surface through an
//! observation that depends on input state beyond what the sequential trace
//! already exposes: a memory access, a further conditional branch (PC
//! observations), or a transiently-wrong (bypassed / assisted) value flowing
//! into either.  [`TaintReport::leak_possible`] is the disjunction of
//! exactly those cases, each over-approximated (any store may alias any
//! later load, any load may touch the armed assist page), so a `false`
//! answer means no speculative window can produce a distinguishing
//! observation — the test case is a true negative and skipping its
//! measurement cannot mask a violation.

use crate::targets::Target;
use rvz_isa::{BlockId, Instr, Reg, Terminator, TestCase};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default speculative-window bound (instructions), matching the default
/// contract / microarchitecture window.
pub const DEFAULT_WINDOW: usize = 250;

/// May-taint over the register file, the flags, and sandbox memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Taint {
    regs: u32,
    flags: bool,
    mem: bool,
}

impl Taint {
    fn join(&mut self, other: &Taint) -> bool {
        let before = *self;
        self.regs |= other.regs;
        self.flags |= other.flags;
        self.mem |= other.mem;
        *self != before
    }

    fn reg(&self, r: Reg) -> bool {
        self.regs & (1 << r.index()) != 0
    }

    fn set_reg(&mut self, r: Reg, tainted: bool) {
        if tainted {
            self.regs |= 1 << r.index();
        } else {
            self.regs &= !(1 << r.index());
        }
    }

    fn any_reg(&self, regs: &[Reg]) -> bool {
        regs.iter().any(|r| self.reg(*r))
    }
}

/// Abstract state at a program point: one [`Taint`] per layer plus the
/// store-seen bit that makes later loads bypass candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct AbsState {
    /// Input-derived values (architectural data dependence on the input).
    input: Taint,
    /// Values that may be transiently stale via store bypass.
    bypass: Taint,
    /// Values that may be transiently injected by a microcode assist.
    assist: Taint,
    /// Values that passed through at least one load.
    loaded: Taint,
    /// A store precedes this point on some path.
    store_seen: bool,
}

impl AbsState {
    fn entry() -> AbsState {
        let mut input = Taint { regs: 0, flags: true, mem: true };
        for r in Reg::ALL {
            // R14 (sandbox base) and RSP are overwritten before execution.
            if !matches!(r, Reg::R14 | Reg::Rsp) {
                input.set_reg(r, true);
            }
        }
        AbsState { input, ..AbsState::default() }
    }

    fn join(&mut self, other: &AbsState) -> bool {
        let mut changed = self.input.join(&other.input);
        changed |= self.bypass.join(&other.bypass);
        changed |= self.assist.join(&other.assist);
        changed |= self.loaded.join(&other.loaded);
        if other.store_seen && !self.store_seen {
            self.store_seen = true;
            changed = true;
        }
        changed
    }
}

/// What kind of speculation a source exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceKind {
    /// A conditional branch terminator (misprediction, V1 family).
    CondBranch,
    /// An indirect jump terminator (BTB misprediction, V2).
    IndirectBranch,
    /// A return terminator (RSB misprediction, V5-ret).
    Return,
    /// A load that may bypass an older store (V4 family).
    StoreBypass,
    /// A load that may trigger a microcode assist (MDS / LVI).
    AssistLoad,
    /// A variable-latency division feeding later speculative work.
    VarLatency,
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceKind::CondBranch => "cond-branch",
            SourceKind::IndirectBranch => "indirect-branch",
            SourceKind::Return => "return",
            SourceKind::StoreBypass => "store-bypass",
            SourceKind::AssistLoad => "assist-load",
            SourceKind::VarLatency => "var-latency",
        };
        f.write_str(s)
    }
}

/// One speculation source found in a test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecSource {
    /// The kind of speculation.
    pub kind: SourceKind,
    /// Block containing the source.
    pub block: usize,
    /// Instruction index for instruction sources; `None` for terminators.
    pub instr: Option<usize>,
}

/// Whether a transmitter reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransmitterKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

impl fmt::Display for TransmitterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransmitterKind::Load => "load",
            TransmitterKind::Store => "store",
        })
    }
}

/// A memory access whose address is data-dependent on a tainted value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transmitter {
    /// Block containing the access.
    pub block: usize,
    /// Instruction index of the access.
    pub instr: usize,
    /// Load or store.
    pub kind: TransmitterKind,
    /// The address depends on input data.
    pub input_tainted: bool,
    /// The address depends on a transiently-wrong (bypassed or assisted)
    /// value — the V4/MDS/LVI dependent-access shape.
    pub transient_tainted: bool,
    /// The address depends on a value that passed through a load.
    pub through_load: bool,
}

/// The result of the static pass over one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintReport {
    /// Every speculation source in program order.
    pub sources: Vec<SpecSource>,
    /// Every tainted-address memory access in program order.
    pub transmitters: Vec<Transmitter>,
    /// Can any speculation source reach a distinguishing observation?
    pub leak_possible: bool,
    /// Positions `(block, instr)` statically reachable inside some
    /// speculative window — where a fence can cut a transient leak.
    pub window: Vec<(usize, usize)>,
}

/// Run the static pass.  Microcode assists are assumed possible when the
/// sandbox has an assist page; use [`analyze_with`] to force them (the
/// `*+Assist` executor modes arm page 0 even without an explicit assist
/// page).
pub fn analyze(tc: &TestCase) -> TaintReport {
    analyze_with(tc, tc.sandbox().assist_page.is_some(), DEFAULT_WINDOW)
}

/// Run the static pass with explicit assist capability and window bound.
pub fn analyze_with(tc: &TestCase, assists: bool, window: usize) -> TaintReport {
    let states = fixpoint(tc, assists);
    collect(tc, assists, window, &states)
}

/// The pre-measurement filter predicate: `true` when the test case must be
/// measured because a speculative leak is statically possible under a CPU
/// with the given assist capability.  `false` answers are true negatives
/// (see the module-level soundness argument).
pub fn leak_possible(tc: &TestCase, assists: bool) -> bool {
    analyze_with(tc, assists, DEFAULT_WINDOW).leak_possible
}

// ---------------------------------------------------------------------------
// Dataflow core
// ---------------------------------------------------------------------------

/// Compute the abstract state at every block entry (fixpoint over the DAG).
fn fixpoint(tc: &TestCase, assists: bool) -> Vec<Option<AbsState>> {
    let n = tc.blocks().len();
    let mut states: Vec<Option<AbsState>> = vec![None; n];
    states[BlockId::ENTRY.index()] = Some(AbsState::entry());
    loop {
        let mut changed = false;
        for b in 0..n {
            let Some(entry) = states[b] else { continue };
            let block = &tc.blocks()[b];
            let mut st = entry;
            for instr in &block.instrs {
                transfer(instr, assists, &mut st, &mut |_, _| {});
            }
            // `Ret` returns through the in-sandbox stack, which the taint
            // lattice models as part of memory; its dynamic successors are
            // all blocks a `Call` may have pushed.  Static successors are
            // enough here because every return target is also a `Call`
            // successor (`return_to`), so it already receives the state.
            for succ in block.terminator.successors() {
                let s = succ.index();
                if s >= n {
                    continue;
                }
                match &mut states[s] {
                    Some(existing) => changed |= existing.join(&st),
                    slot @ None => {
                        *slot = Some(st);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return states;
        }
    }
}

/// Apply one instruction to the abstract state.  `on_access` is called for
/// every memory operand with the access site's [`Transmitter`] description
/// and the value taint that a load at that site produces.
fn transfer(
    instr: &Instr,
    assists: bool,
    st: &mut AbsState,
    on_access: &mut dyn FnMut(TransmitterKind, AccessTaint),
) {
    // Address taints of every memory operand, before the write-back.
    for (mem, _w, is_write) in instr.mem_operands() {
        let regs = mem.address_regs();
        on_access(
            if is_write { TransmitterKind::Store } else { TransmitterKind::Load },
            AccessTaint {
                input: st.input.any_reg(&regs),
                transient: st.bypass.any_reg(&regs) || st.assist.any_reg(&regs),
                through_load: st.loaded.any_reg(&regs),
            },
        );
    }

    // Value taint flowing out of this instruction, per layer.
    let reads = instr.reads_regs();
    let read_layer = |t: &Taint, reads_flags: bool, reads_mem: bool| -> bool {
        t.any_reg(&reads) || (reads_flags && t.flags) || (reads_mem && t.mem)
    };
    let rf = instr.reads_flags();
    let rm = instr.reads_mem();
    let v_input = read_layer(&st.input, rf, rm);
    let mut v_bypass = read_layer(&st.bypass, rf, rm);
    let mut v_assist = read_layer(&st.assist, rf, rm);
    let mut v_loaded = read_layer(&st.loaded, rf, rm);

    if rm {
        // The loaded value may be transiently wrong: stale (if an older
        // store may still be in flight) or injected by an assist.
        v_loaded = true;
        if st.store_seen {
            v_bypass = true;
        }
        if assists {
            v_assist = true;
        }
    }
    if matches!(instr, Instr::Lea { .. }) {
        // LEA computes an address without touching memory.
        v_loaded = read_layer(&st.loaded, false, false);
        v_bypass = read_layer(&st.bypass, false, false);
        v_assist = read_layer(&st.assist, false, false);
    }

    for r in instr.writes_regs() {
        st.input.set_reg(r, v_input);
        st.bypass.set_reg(r, v_bypass);
        st.assist.set_reg(r, v_assist);
        st.loaded.set_reg(r, v_loaded);
    }
    if instr.writes_mem() {
        st.input.mem |= v_input;
        st.bypass.mem |= v_bypass;
        st.assist.mem |= v_assist;
        st.loaded.mem |= v_loaded;
        st.store_seen = true;
    }
    if instr.writes_flags() {
        st.input.flags = v_input;
        st.bypass.flags = v_bypass;
        st.assist.flags = v_assist;
        st.loaded.flags = v_loaded;
    }
}

/// Address/value taint of one memory access site.
#[derive(Debug, Clone, Copy)]
struct AccessTaint {
    input: bool,
    transient: bool,
    through_load: bool,
}

// ---------------------------------------------------------------------------
// Fact collection and the leak predicate
// ---------------------------------------------------------------------------

/// Per-block facts for the speculative reachability predicate: starting at
/// the top of a block, can a speculative path observe a memory access or a
/// further branch before hitting a fence?
fn spec_reach(tc: &TestCase) -> Vec<bool> {
    let n = tc.blocks().len();
    let mut reach = vec![false; n];
    // Blocks only branch forward, so one reverse pass reaches the fixpoint.
    for b in (0..n).rev() {
        let block = &tc.blocks()[b];
        let mut fenced = false;
        for instr in &block.instrs {
            if instr.is_fence() {
                fenced = true;
                break;
            }
            if instr.accesses_mem() {
                reach[b] = true;
                break;
            }
        }
        if !reach[b] && !fenced {
            let term = &block.terminator;
            reach[b] = term.is_conditional()
                || term.is_indirect()
                || term.successors().iter().any(|s| s.index() < n && reach[s.index()]);
        }
    }
    reach
}

fn collect(
    tc: &TestCase,
    assists: bool,
    window: usize,
    states: &[Option<AbsState>],
) -> TaintReport {
    let n = tc.blocks().len();
    let reach = spec_reach(tc);
    let any_access = tc.blocks().iter().any(|b| b.memory_access_count() > 0);

    let mut sources = Vec::new();
    let mut transmitters = Vec::new();
    let mut leak = false;
    // Speculative-window BFS start positions.
    let mut starts: Vec<(usize, usize)> = Vec::new();

    for (b, state) in states.iter().enumerate().take(n) {
        let Some(entry) = *state else { continue };
        let block = &tc.blocks()[b];
        let mut st = entry;
        for (i, instr) in block.instrs.iter().enumerate() {
            let before = st;
            transfer(instr, assists, &mut st, &mut |kind, at| {
                if at.input || at.transient {
                    transmitters.push(Transmitter {
                        block: b,
                        instr: i,
                        kind,
                        input_tainted: at.input,
                        transient_tainted: at.transient,
                        through_load: at.through_load,
                    });
                }
                // A transmitter whose address carries transient (bypassed or
                // assisted) data is a complete source-to-observation chain.
                if at.transient {
                    leak = true;
                }
            });
            if instr.reads_mem() {
                if before.store_seen {
                    sources.push(SpecSource {
                        kind: SourceKind::StoreBypass,
                        block: b,
                        instr: Some(i),
                    });
                }
                if assists {
                    sources.push(SpecSource {
                        kind: SourceKind::AssistLoad,
                        block: b,
                        instr: Some(i),
                    });
                }
            }
            if instr.writes_mem() {
                // The bypass window opens at the skipped store.
                starts.push((b, i + 1));
            }
            if instr.is_variable_latency() {
                sources.push(SpecSource { kind: SourceKind::VarLatency, block: b, instr: Some(i) });
            }
        }
        // Transiently-wrong data reaching a branch decision diverges the
        // speculative path itself (PC observations under CT).
        let term = &block.terminator;
        if term.reads_flags() && (st.bypass.flags || st.assist.flags) {
            leak = true;
        }
        if let Terminator::IndirectJmp { src, .. } = term {
            if st.bypass.reg(*src) || st.assist.reg(*src) {
                leak = true;
            }
        }
        match term {
            Terminator::CondJmp { taken, not_taken, .. } => {
                sources.push(SpecSource { kind: SourceKind::CondBranch, block: b, instr: None });
                let spec = [taken.index(), not_taken.index()];
                if spec.iter().any(|&s| s < n && reach[s]) {
                    leak = true;
                }
                for &s in &spec {
                    starts.push((s, 0));
                }
            }
            Terminator::IndirectJmp { table, .. } => {
                sources.push(SpecSource {
                    kind: SourceKind::IndirectBranch,
                    block: b,
                    instr: None,
                });
                // The BTB can predict any previously trained target.
                if any_access {
                    leak = true;
                }
                for t in table {
                    starts.push((t.index(), 0));
                }
            }
            Terminator::Ret => {
                sources.push(SpecSource { kind: SourceKind::Return, block: b, instr: None });
                // The RSB may predict a stale return target anywhere.
                if any_access {
                    leak = true;
                }
                for s in 0..n {
                    if s != b {
                        starts.push((s, 0));
                    }
                }
            }
            _ => {}
        }
    }

    sources.sort_by_key(|s| (s.block, s.instr));
    let window = window_positions(tc, &starts, window);
    TaintReport { sources, transmitters, leak_possible: leak, window }
}

/// Positions reachable within `fuel` instructions from the given speculative
/// entry points, stopping at fences (mirroring the model's `explore`).
fn window_positions(tc: &TestCase, starts: &[(usize, usize)], fuel: usize) -> Vec<(usize, usize)> {
    let n = tc.blocks().len();
    let mut best: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    let mut queue: Vec<(usize, usize, usize)> =
        starts.iter().map(|&(b, i)| (b, i, fuel)).collect();
    while let Some((b, i, fuel)) = queue.pop() {
        if b >= n || fuel == 0 {
            continue;
        }
        let block = &tc.blocks()[b];
        if i >= block.instrs.len() {
            for s in block.terminator.successors() {
                queue.push((s.index(), 0, fuel - 1));
            }
            continue;
        }
        match best.get(&(b, i)) {
            Some(&f) if f >= fuel => continue,
            _ => {
                best.insert((b, i), fuel);
            }
        }
        if block.instrs[i].is_fence() {
            continue;
        }
        queue.push((b, i + 1, fuel - 1));
    }
    best.into_keys().collect()
}

// ---------------------------------------------------------------------------
// Gadget signature classification
// ---------------------------------------------------------------------------

/// The canonical shape of a leaking gadget: which speculation source feeds
/// which transmitter, and through what kind of dependency chain.  Two
/// violations with equal signatures are the same leak class, which lets
/// campaigns dedup the millionth V1 against the first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GadgetSignature {
    /// The speculation source opening the window.
    pub source: SourceKind,
    /// Whether the transmitter is a load or a store.
    pub transmitter: TransmitterKind,
    /// The transmitter address depends on a value that passed through a
    /// load (the classic secret-dependent double access) — or, for a store
    /// transmitter, a load consumes the stored location inside the window.
    pub through_load: bool,
    /// A variable-latency division feeds or races the window.
    pub var_latency: bool,
}

impl GadgetSignature {
    /// The conventional leak-class label (V1, V4, …).
    pub fn label(&self) -> &'static str {
        match self.source {
            SourceKind::AssistLoad => "MDS/LVI",
            SourceKind::StoreBypass | SourceKind::VarLatency => {
                if self.var_latency {
                    "V4-var"
                } else {
                    "V4"
                }
            }
            SourceKind::IndirectBranch => "V2",
            SourceKind::Return => "V5-ret",
            SourceKind::CondBranch => match self.transmitter {
                TransmitterKind::Store => {
                    if self.through_load {
                        "V1.1"
                    } else {
                        "spec-store-eviction"
                    }
                }
                TransmitterKind::Load => {
                    if self.var_latency {
                        "V1-var"
                    } else {
                        "V1"
                    }
                }
            },
        }
    }

    /// A fully spelled-out signature string for deduplication keys.
    pub fn canonical(&self) -> String {
        format!(
            "{}->{}{}{}",
            self.source,
            self.transmitter,
            if self.through_load { "[dep]" } else { "" },
            if self.var_latency { "[var]" } else { "" },
        )
    }
}

impl fmt::Display for GadgetSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.label(), self.canonical())
    }
}

/// Classify a (minimized) violating test case into a gadget signature, or
/// `None` when the static pass finds no leak-capable chain at all.
///
/// When multiple sources could explain a leak the most specific mechanism
/// wins: assists over store bypass over RSB/BTB over plain branch
/// misprediction — matching how the paper names its gadgets (e.g. MDS-SB
/// contains a store-then-load pair but is an assist leak).
pub fn classify_signature(tc: &TestCase) -> Option<GadgetSignature> {
    classify_for(tc, tc.sandbox().assist_page.is_some())
}

/// [`classify_signature`] with explicit assist capability, for targets whose
/// executor mode arms assists without a dedicated assist page.
pub fn classify_for(tc: &TestCase, assists: bool) -> Option<GadgetSignature> {
    let report = analyze_with(tc, assists, DEFAULT_WINDOW);
    if !report.leak_possible {
        return None;
    }
    let has_div = tc.blocks().iter().any(|b| b.instrs.iter().any(|i| i.is_variable_latency()));
    let has = |k: SourceKind| report.sources.iter().any(|s| s.kind == k);

    // Assist / bypass chains: the transmitter carries transient taint.
    let transient = report.transmitters.iter().find(|t| t.transient_tainted);
    if let Some(t) = transient {
        if assists && has(SourceKind::AssistLoad) {
            return Some(GadgetSignature {
                source: SourceKind::AssistLoad,
                transmitter: t.kind,
                through_load: t.through_load,
                var_latency: has_div,
            });
        }
        if has(SourceKind::StoreBypass) {
            return Some(GadgetSignature {
                source: SourceKind::StoreBypass,
                transmitter: t.kind,
                through_load: t.through_load,
                var_latency: has_div,
            });
        }
    }

    // Control-speculation chains: pick the first branch source and the best
    // transmitter inside its speculative window (prefer dependent-chain
    // transmitters, the shape that carries a secret).
    let source_kind = if has(SourceKind::Return) {
        SourceKind::Return
    } else if has(SourceKind::IndirectBranch) {
        SourceKind::IndirectBranch
    } else {
        SourceKind::CondBranch
    };
    let window: std::collections::BTreeSet<(usize, usize)> =
        report.window.iter().copied().collect();
    let in_window: Vec<&Transmitter> = report
        .transmitters
        .iter()
        .filter(|t| window.contains(&(t.block, t.instr)))
        .collect();
    let best: &Transmitter = in_window
        .iter()
        .find(|t| t.through_load)
        .or_else(|| in_window.first())
        .copied()
        // Return windows cover every block, but an empty transmitter list in
        // the window can still happen for indirect tables; fall back to
        // program order.
        .or_else(|| report.transmitters.iter().find(|t| t.through_load))
        .or_else(|| report.transmitters.first())?;
    let best = *best;
    let through_load = match best.kind {
        TransmitterKind::Load => best.through_load,
        // For a store transmitter, "through load" means a load consumes
        // memory inside the window after the store.
        TransmitterKind::Store => window
            .iter()
            .filter(|&&(b, i)| (b, i) > (best.block, best.instr))
            .any(|&(b, i)| {
                tc.blocks()
                    .get(b)
                    .and_then(|blk| blk.instrs.get(i))
                    .is_some_and(|instr| instr.reads_mem())
            }),
    };
    Some(GadgetSignature {
        source: source_kind,
        transmitter: best.kind,
        through_load,
        var_latency: has_div,
    })
}

/// Classify and map to the leak-class label in one step, resolving the
/// assist capability from the target's executor mode when available.
pub fn gadget_class(tc: &TestCase, target: Option<&Target>) -> Option<GadgetSignature> {
    let assists =
        tc.sandbox().assist_page.is_some() || target.is_some_and(|t| t.mode.assists);
    classify_for(tc, assists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use rvz_isa::builder::TestCaseBuilder;
    use rvz_isa::Cond;

    #[test]
    fn straight_line_arithmetic_cannot_leak() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.add(Reg::Rax, Reg::Rbx);
                b.alu_imm(rvz_isa::AluOp::Xor, Reg::Rcx, 13);
                b.exit();
            })
            .build();
        let report = analyze(&tc);
        assert!(!report.leak_possible);
        assert!(report.sources.is_empty());
        assert!(report.transmitters.is_empty());
        assert!(report.window.is_empty());
    }

    #[test]
    fn architectural_accesses_alone_cannot_leak() {
        // Loads and stores with no branch, no store-before-load pair and no
        // assists: every access is architectural and already exposed by the
        // sequential contract trace.
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.exit();
            })
            .build();
        let report = analyze(&tc);
        assert!(!report.leak_possible);
        // The access is input-tainted — a transmitter — but no source
        // reaches it.
        assert_eq!(report.transmitters.len(), 1);
        assert!(report.transmitters[0].input_tainted);
    }

    #[test]
    fn branch_without_reachable_observation_cannot_leak() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 128);
                b.jcc(Cond::B, "a", "b");
            })
            .block("a", |b| {
                b.add(Reg::Rax, Reg::Rbx);
                b.jmp("b");
            })
            .block("b", |b| b.exit())
            .build();
        assert!(!analyze(&tc).leak_possible);
    }

    #[test]
    fn fence_cuts_the_speculative_window() {
        let leaky = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 128);
                b.jcc(Cond::B, "spec", "done");
            })
            .block("spec", |b| {
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build();
        assert!(analyze(&leaky).leak_possible);

        let fenced = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 128);
                b.jcc(Cond::B, "spec", "done");
            })
            .block("spec", |b| {
                b.lfence();
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build();
        assert!(!analyze(&fenced).leak_possible, "an LFENCE at the window entry kills the leak");
    }

    #[test]
    fn nested_branches_leak_through_pc_observations() {
        // No memory access at all, but a second input-dependent branch
        // inside the first branch's window diverges the speculative PC
        // stream — CT-COND distinguishes inputs that CT-SEQ does not.
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 128);
                b.jcc(Cond::B, "mid", "done");
            })
            .block("mid", |b| {
                b.cmp_imm(Reg::Rbx, 64);
                b.jcc(Cond::B, "deep", "done");
            })
            .block("deep", |b| {
                b.nop();
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build();
        assert!(analyze(&tc).leak_possible);
    }

    #[test]
    fn known_gadgets_are_leak_possible() {
        for (name, tc) in gadgets::table5_gadgets() {
            assert!(analyze(&tc).leak_possible, "{name} must be leak-possible");
        }
        for tc in [
            gadgets::lvi_null(),
            gadgets::v1_var(),
            gadgets::v4_var(),
            gadgets::ssb_double_load(),
            gadgets::arch_seq_insensitive(),
            gadgets::speculative_store_eviction(),
        ] {
            assert!(analyze(&tc).leak_possible, "{} must be leak-possible", tc.origin());
        }
    }

    #[test]
    fn v1_window_covers_the_speculative_path() {
        let tc = gadgets::spectre_v1();
        let report = analyze(&tc);
        // Block 1 (the in-bounds path) is inside the branch's window.
        assert!(report.window.iter().any(|&(b, _)| b == 1));
        assert!(report.sources.iter().any(|s| s.kind == SourceKind::CondBranch));
    }

    #[test]
    fn classifier_assigns_expected_classes() {
        let label = |tc: &TestCase| classify_signature(tc).expect("leak class").label();
        assert_eq!(label(&gadgets::spectre_v1()), "V1");
        assert_eq!(label(&gadgets::spectre_v4()), "V4");
        assert_eq!(label(&gadgets::spectre_v1_1()), "V1.1");
        assert_eq!(label(&gadgets::spectre_v2()), "V2");
        assert_eq!(label(&gadgets::spectre_v5_ret()), "V5-ret");
        assert_eq!(label(&gadgets::v1_var()), "V1-var");
        assert_eq!(label(&gadgets::v4_var()), "V4-var");
        assert_eq!(label(&gadgets::mds_lfb()), "MDS/LVI");
        assert_eq!(label(&gadgets::mds_sb()), "MDS/LVI");
        assert_eq!(label(&gadgets::lvi_null()), "MDS/LVI");
        assert_eq!(label(&gadgets::speculative_store_eviction()), "spec-store-eviction");
    }

    #[test]
    fn classifier_returns_none_without_a_leak() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.add(Reg::Rax, Reg::Rbx);
                b.exit();
            })
            .build();
        assert_eq!(classify_signature(&tc), None);
    }

    #[test]
    fn signature_labels_and_canonical_forms_are_stable() {
        let sig = classify_signature(&gadgets::spectre_v1()).unwrap();
        assert_eq!(sig.source, SourceKind::CondBranch);
        assert_eq!(sig.transmitter, TransmitterKind::Load);
        assert!(sig.through_load);
        assert!(!sig.var_latency);
        assert_eq!(sig.canonical(), "cond-branch->load[dep]");
        assert!(format!("{sig}").contains("V1"));
    }

    #[test]
    fn assist_capability_is_inferred_from_mode() {
        use crate::targets::Target;
        // A plain load chain leaks only when assists are possible.
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.and_imm(Reg::Rcx, 0b111111000000);
                b.load(Reg::Rdx, Reg::R14, Reg::Rcx);
                b.exit();
            })
            .build();
        assert!(!leak_possible(&tc, false));
        assert!(leak_possible(&tc, true));
        assert_eq!(gadget_class(&tc, Some(&Target::target5())), None);
        let sig = gadget_class(&tc, Some(&Target::target7())).expect("assist leak");
        assert_eq!(sig.label(), "MDS/LVI");
    }
}
