//! # rvz-service
//!
//! Serving fuzzing campaigns as a service: the sharded front-end of the
//! ROADMAP's north star.  A *job* is a [`CampaignMatrix`] spec — any
//! (target, contract) cell set with its budget and seed, so every existing
//! harness (Table 3, contract sensitivity, detection) is submittable.  Jobs
//! are distributed over long-lived shard workers, driven incrementally
//! (one checkpointable wave at a time — [`MatrixRun`]), and their progress
//! is streamed to subscribed clients as JSON lines.
//!
//! ```text
//!  revizor-submit ──┐                       ┌─ shard 0 ─ MatrixRun(job A) ─┐
//!  revizor-submit ──┼─► TCP reactor ─ core ─┼─ shard 1 ─ MatrixRun(job B) ─┼─► spool/
//!  Client / watch ◄─┘   (JSON lines)   │    └─ …                           │   *.json
//!                                      └──────── event logs ◄──────────────┘
//! ```
//!
//! In **fleet mode** ([`ServiceConfig::worker_listen`]) the shard
//! threads are replaced by an elastic fleet of worker hosts
//! (`revizor-worker`): workers *register at runtime* over the fleet
//! port and *lease* relocatable work units — one unit per target group
//! of a job's matrix — so hosts can join or leave mid-job.  The
//! [`coordinator`] replicates every wave checkpoint (digest-validated)
//! into the spool, *steals* units back from slow or departed workers at
//! the last replicated sub-checkpoint (lease tokens fence the old
//! owner's stale frames), merges finished units into one job result,
//! and forwards cancellations — see [`coordinator`] and [`worker`] for
//! the protocol, and `tests/chaos.rs` for the seeded fault-injection
//! sweep proving verdicts survive any kill/drop/delay/steal
//! interleaving byte-identically.  Jobs carry submit-time priorities
//! (higher drains first) and can be cancelled cooperatively in either
//! mode.  When the queued-unit backlog reaches
//! [`ServiceConfig::queue_watermark`], `submit` defers with a
//! retry-after hint instead of queueing unbounded work
//! ([`Client::try_submit`]).
//!
//! Three guarantees make the service trustworthy as a *testing* service:
//!
//! * **Determinism** — a job's verdict section (`result.cells`) is a pure
//!   function of its spec: byte-identical to an in-process
//!   [`CampaignMatrix::run`] with the same seed, for any shard count,
//!   parallelism or client interleaving.
//! * **Durability** — job state (spec + wave checkpoint) persists to a
//!   spool directory; a killed server resumes every unfinished job on
//!   restart, and the resumed verdicts are byte-identical too (unit seeds
//!   derive from `(matrix seed, target id, index)` alone).
//! * **Isolation** — concurrent jobs share nothing but the process: each
//!   has its own `MatrixRun`, event log and (optional) measurement pool.
//!
//! The TCP front-end is a non-blocking poll reactor in async *shape* (the
//! vendored, offline workspace has no tokio); see [`server`] for the
//! protocol table and the runtime-swap story.  For in-process use, skip TCP
//! entirely: [`ServiceHandle::start`] with `listen: None` plus
//! [`ServiceHandle::submit`] / [`ServiceHandle::wait`].
//!
//! [`CampaignMatrix`]: revizor::orchestrator::CampaignMatrix
//! [`CampaignMatrix::run`]: revizor::orchestrator::CampaignMatrix::run
//! [`MatrixRun`]: revizor::orchestrator::MatrixRun

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod core;
mod framing;
pub mod job;
pub mod server;
pub mod spool;
pub mod worker;

pub use client::{Client, SubmitError, WatchError};
pub use coordinator::{Coordinator, CoordinatorHandle};
pub use core::{
    deterministic_result, job_result_json, Backpressure, JobStatus, ServiceConfig, ServiceCore,
    SubmitRejection, UnitStatus,
};
pub use job::JobSpec;
pub use server::{Server, ServerHandle};
pub use spool::{JobPhase, Spool, SpoolRecord, UnitPhase, UnitRecord};
pub use worker::{FaultAction, FaultHook, Worker, WorkerConfig};

use rvz_bench::json::Json;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running service instance: shard workers plus (optionally) the TCP
/// front-end, owned together.
///
/// ```no_run
/// use rvz_service::{JobSpec, ServiceConfig, ServiceHandle};
///
/// let handle = ServiceHandle::start(ServiceConfig::default()).unwrap();
/// let job = handle.submit(JobSpec::new(7).with_budget(60).add_cell(5, "CT-SEQ")).unwrap();
/// let result = handle.wait(&job).unwrap();
/// println!("{}", result.render_pretty());
/// handle.shutdown();
/// ```
pub struct ServiceHandle {
    core: Arc<ServiceCore>,
    workers: Vec<JoinHandle<()>>,
    server: Option<ServerHandle>,
    coordinator: Option<CoordinatorHandle>,
}

impl ServiceHandle {
    /// Start the service, resuming any unfinished spool jobs.
    ///
    /// With [`ServiceConfig::worker_listen`] unset this spawns the
    /// in-process shard workers; set, the service runs in **multi-host
    /// mode** instead — no local shards, jobs are dispatched to
    /// `revizor-worker` hosts connecting on that address (see
    /// [`coordinator`]).  The client-facing TCP reactor is attached in
    /// either mode when [`ServiceConfig::listen`] is set.
    ///
    /// # Errors
    /// Propagates spool and listener failures.
    pub fn start(config: ServiceConfig) -> io::Result<ServiceHandle> {
        let listen = config.listen.clone();
        let worker_listen = config.worker_listen.clone();
        // Coordinator mode runs no local shard threads: worker hosts are
        // the execution substrate.
        let shards = if worker_listen.is_some() { 0 } else { config.shards.max(1) };
        let core = ServiceCore::new(config)?;
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let core = Arc::clone(&core);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rvz-service-shard-{shard}"))
                    .spawn(move || core.run_worker(shard))
                    .map_err(io::Error::other)?,
            );
        }
        let coordinator = match &worker_listen {
            Some(listen) => Some(CoordinatorHandle::spawn(Arc::clone(&core), listen)?),
            None => None,
        };
        let server = match &listen {
            Some(listen) => Some(ServerHandle::spawn(Arc::clone(&core), listen)?),
            None => None,
        };
        Ok(ServiceHandle { core, workers, server, coordinator })
    }

    /// The transport-agnostic core (full API surface).
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// The TCP address, when a front-end is attached.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(ServerHandle::local_addr)
    }

    /// The worker-port address, when running in fleet mode.
    pub fn worker_addr(&self) -> Option<SocketAddr> {
        self.coordinator.as_ref().map(CoordinatorHandle::local_addr)
    }

    /// Submit a job in-process.
    ///
    /// # Errors
    /// Returns a message for invalid specs.
    pub fn submit(&self, spec: JobSpec) -> Result<String, String> {
        self.core.submit(spec)
    }

    /// Submit a job in-process, honouring the backpressure watermark.
    ///
    /// # Errors
    /// [`SubmitRejection::Invalid`] for bad specs,
    /// [`SubmitRejection::Backpressure`] (with a retry hint) when the
    /// queued-unit backlog is at [`ServiceConfig::queue_watermark`].
    pub fn try_submit(&self, spec: JobSpec) -> Result<String, SubmitRejection> {
        self.core.try_submit(spec)
    }

    /// Block until a job finishes and return its result payload.
    ///
    /// # Errors
    /// Returns a message for unknown jobs or when the service stops first.
    pub fn wait(&self, job: &str) -> Result<Json, String> {
        self.core.wait(job)
    }

    /// Request a job's cancellation: queued jobs cancel immediately,
    /// running jobs cooperatively at their next wave boundary.
    ///
    /// # Errors
    /// Returns a message for unknown or already-finished jobs.
    pub fn cancel(&self, job: &str) -> Result<JobPhase, String> {
        self.core.cancel(job)
    }

    /// Stop the service: workers halt at their next wave boundary, persist
    /// a checkpoint for any in-flight job and exit — exactly the state a
    /// killed server leaves behind, so unfinished jobs resume on the next
    /// [`ServiceHandle::start`] over the same spool.
    pub fn shutdown(self) {
        self.core.stop();
        for worker in self.workers {
            let _ = worker.join();
        }
        if let Some(coordinator) = self.coordinator {
            coordinator.join();
        }
        if let Some(server) = self.server {
            server.join();
        }
    }
}
