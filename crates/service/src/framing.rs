//! Shared non-blocking line-framing primitives for the poll reactors
//! (the client front-end in [`crate::server`] and the worker-port
//! coordinator in [`crate::coordinator`]).
//!
//! Both reactors speak one JSON document per `\n`-terminated line over
//! non-blocking sockets; the subtle edge cases (orderly close on `Ok(0)`,
//! `WouldBlock` as "drained", hard errors as close, partial writes) live
//! here once.

use rvz_bench::json::Json;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Drain everything currently readable into `inbuf`.  Returns
/// `(progress, closed)`: whether any bytes arrived, and whether the
/// connection ended (EOF or a hard error).
pub(crate) fn read_available(stream: &mut TcpStream, inbuf: &mut Vec<u8>) -> (bool, bool) {
    let mut progress = false;
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return (progress, true),
            Ok(n) => {
                inbuf.extend_from_slice(&buf[..n]);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (progress, false),
            Err(_) => return (progress, true),
        }
    }
}

/// Pop the next complete, non-blank line from `inbuf` (without its
/// terminator), if one is buffered.
pub(crate) fn next_line(inbuf: &mut Vec<u8>) -> Option<String> {
    while let Some(pos) = inbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = inbuf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
        if !line.trim().is_empty() {
            return Some(line);
        }
    }
    None
}

/// The `op` discriminator of a protocol frame, if it carries one.
pub(crate) fn op(frame: &Json) -> Option<&str> {
    frame.get("op").and_then(Json::as_str)
}

/// Append one rendered frame (plus terminator) to `outbuf`.
pub(crate) fn queue_line(outbuf: &mut Vec<u8>, doc: &Json) {
    outbuf.extend_from_slice(doc.render().as_bytes());
    outbuf.push(b'\n');
}

/// Write as much of `outbuf` as the socket accepts.  Returns
/// `(progress, closed)` like [`read_available`].
pub(crate) fn flush(stream: &mut TcpStream, outbuf: &mut Vec<u8>) -> (bool, bool) {
    let mut progress = false;
    while !outbuf.is_empty() {
        match stream.write(outbuf) {
            Ok(0) => return (progress, true),
            Ok(n) => {
                outbuf.drain(..n);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (progress, false),
            Err(_) => return (progress, true),
        }
    }
    (progress, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_skips_blanks_and_preserves_order() {
        let mut buf = b"\n  \n{\"a\":1}\n{\"b\":2}\npartial".to_vec();
        assert_eq!(next_line(&mut buf).as_deref(), Some("{\"a\":1}"));
        assert_eq!(next_line(&mut buf).as_deref(), Some("{\"b\":2}"));
        assert_eq!(next_line(&mut buf), None, "incomplete line stays buffered");
        assert_eq!(buf, b"partial");
    }

    #[test]
    fn queue_line_terminates_frames() {
        let mut out = Vec::new();
        queue_line(&mut out, &Json::obj().field("ok", true));
        queue_line(&mut out, &Json::obj().field("ok", false));
        assert_eq!(out, b"{\"ok\":true}\n{\"ok\":false}\n");
    }
}
