//! Heuristic classification of detected violations.
//!
//! The paper identifies the vulnerability behind each violation by manual
//! inspection of the counterexample; the reproduction automates the common
//! cases with a heuristic based on the target configuration, the violated
//! contract and the features of the violating test case (which instruction
//! classes it contains).  The labels follow Table 3.

use crate::targets::Target;
use rvz_model::Contract;
use rvz_isa::TestCase;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Known classes of speculative vulnerabilities surfaced by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VulnClass {
    /// Spectre V1 (bounds check bypass).
    SpectreV1,
    /// The novel V1 latency variant (§6.3).
    SpectreV1Var,
    /// Spectre V4 (speculative store bypass).
    SpectreV4,
    /// The novel V4 latency variant (§6.3).
    SpectreV4Var,
    /// MDS (microarchitectural data sampling) via microcode assists.
    Mds,
    /// LVI-Null (zero injection on MDS-patched parts).
    LviNull,
    /// Speculative stores modifying the cache before retirement (§6.4).
    SpeculativeStoreEviction,
    /// A violation that does not match any known signature.
    Unknown,
    /// Spectre V2 (branch target injection through the BTB).
    SpectreV2,
    /// Spectre V5 / ret2spec (stale RSB return-target prediction).
    SpectreV5Ret,
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VulnClass::SpectreV1 => "V1",
            VulnClass::SpectreV1Var => "V1-var",
            VulnClass::SpectreV4 => "V4",
            VulnClass::SpectreV4Var => "V4-var",
            VulnClass::Mds => "MDS",
            VulnClass::LviNull => "LVI-Null",
            VulnClass::SpeculativeStoreEviction => "spec-store-eviction",
            VulnClass::Unknown => "unknown",
            VulnClass::SpectreV2 => "V2-BTB",
            VulnClass::SpectreV5Ret => "V5-ret",
        };
        f.write_str(s)
    }
}

/// Classify a violation found on `target` against `contract` with the given
/// violating test case.
pub fn classify(target: &Target, contract: &Contract, tc: &TestCase) -> VulnClass {
    let has_cb = tc.conditional_branch_count() > 0;
    let has_var = tc.variable_latency_count() > 0;
    let has_mem = tc.memory_access_count() > 0;
    let assists = target.mode.assists;
    let bypass_possible = target.cpu_config.bypass_active();

    // Assist-driven leaks dominate every contract (Targets 7-8).
    if assists {
        return if target.cpu_config.mds_vulnerable {
            VulnClass::Mds
        } else if target.cpu_config.lvi_null_injection {
            VulnClass::LviNull
        } else {
            VulnClass::Unknown
        };
    }

    // §6.4: the no-speculative-store contract variant is violated by parts
    // whose speculative stores already touch the cache.
    if !contract.expose_speculative_stores && target.cpu_config.spec_store_touches_cache {
        return VulnClass::SpeculativeStoreEviction;
    }

    // Predictor-zoo scenarios: no CT contract speculates indirect jumps or
    // returns, so a violating test case built around those terminators
    // identifies the predictor structure directly.  Random programs never
    // emit either terminator, so classic-cell verdict JSON is unaffected.
    if tc.indirect_branch_count() > 0 && !has_cb {
        return VulnClass::SpectreV2;
    }
    if tc.return_count() > 0 && !has_cb {
        return VulnClass::SpectreV5Ret;
    }

    let cond_permitted = contract.execution.permits_cond();
    let bpas_permitted = contract.execution.permits_bpas();

    if has_cb && !cond_permitted {
        return VulnClass::SpectreV1;
    }
    if has_cb && cond_permitted && has_var {
        return VulnClass::SpectreV1Var;
    }
    if has_mem && bypass_possible && !bpas_permitted {
        return VulnClass::SpectreV4;
    }
    if has_mem && bypass_possible && bpas_permitted && has_var {
        return VulnClass::SpectreV4Var;
    }
    VulnClass::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use crate::targets::Target;

    #[test]
    fn v1_classification() {
        let c = classify(&Target::target5(), &Contract::ct_seq(), &gadgets::spectre_v1());
        assert_eq!(c, VulnClass::SpectreV1);
    }

    #[test]
    fn v1_var_classification() {
        let c = classify(&Target::target6(), &Contract::ct_cond(), &gadgets::v1_var());
        assert_eq!(c, VulnClass::SpectreV1Var);
    }

    #[test]
    fn v4_classification() {
        let c = classify(&Target::target2(), &Contract::ct_seq(), &gadgets::spectre_v4());
        assert_eq!(c, VulnClass::SpectreV4);
    }

    #[test]
    fn v4_var_classification() {
        let c = classify(&Target::target3(), &Contract::ct_bpas(), &gadgets::v4_var());
        assert_eq!(c, VulnClass::SpectreV4Var);
    }

    #[test]
    fn mds_and_lvi_classification() {
        let c = classify(&Target::target7(), &Contract::ct_seq(), &gadgets::mds_lfb());
        assert_eq!(c, VulnClass::Mds);
        let c = classify(&Target::target8(), &Contract::ct_seq(), &gadgets::mds_lfb());
        assert_eq!(c, VulnClass::LviNull);
    }

    #[test]
    fn spec_store_eviction_classification() {
        let mut target = Target::target8();
        target.mode = rvz_executor::MeasurementMode::prime_probe();
        let c = classify(
            &target,
            &Contract::ct_cond_no_spec_store(),
            &gadgets::speculative_store_eviction(),
        );
        assert_eq!(c, VulnClass::SpeculativeStoreEviction);
    }

    #[test]
    fn unknown_when_nothing_matches() {
        // AR-only test case on a fully patched part.
        let target = Target::target4();
        let tc = rvz_isa::builder::TestCaseBuilder::new()
            .block("entry", |b| {
                b.add_imm(rvz_isa::Reg::Rax, 1);
                b.exit();
            })
            .build();
        assert_eq!(classify(&target, &Contract::ct_cond_bpas(), &tc), VulnClass::Unknown);
    }

    #[test]
    fn display_labels_match_table3() {
        assert_eq!(format!("{}", VulnClass::SpectreV1), "V1");
        assert_eq!(format!("{}", VulnClass::SpectreV4Var), "V4-var");
        assert_eq!(format!("{}", VulnClass::LviNull), "LVI-Null");
        assert_eq!(format!("{}", VulnClass::SpectreV2), "V2-BTB");
        assert_eq!(format!("{}", VulnClass::SpectreV5Ret), "V5-ret");
    }

    #[test]
    fn zoo_scenarios_classify_by_terminator() {
        let c = classify(
            &Target::target11(),
            &Contract::ct_cond_bpas(),
            &gadgets::btb_aliasing_v2(),
        );
        assert_eq!(c, VulnClass::SpectreV2);
        let c = classify(
            &Target::target12(),
            &Contract::ct_cond_bpas(),
            &gadgets::deep_rsb_chain(20),
        );
        assert_eq!(c, VulnClass::SpectreV5Ret);
    }
}
