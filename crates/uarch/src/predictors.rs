//! Branch prediction structures: conditional predictor, BTB and RSB.
//!
//! These structures are the microarchitectural context (`Ctx` in
//! Definition 1) that the executor cannot set directly and instead controls
//! through *priming*: running many inputs in sequence so that earlier inputs
//! train the predictors for later ones (§5.3).
//!
//! Prediction is pluggable: [`SpecCpu`](crate::SpecCpu) consults the three
//! trait objects [`DirectionPredictor`] (conditional direction),
//! [`TargetPredictor`] (indirect-jump targets) and [`ReturnPredictor`]
//! (return targets), built from the [`PredictorConfig`] carried in
//! [`UarchConfig`](crate::UarchConfig).  Besides the paper-default trio
//! (bimodal [`BranchPredictor`], last-target [`Btb`], 16-entry stack
//! [`Rsb`]) the zoo provides a TAGE-style predictor ([`Tage`]), a
//! loop-termination predictor ([`LoopPredictor`]), a set-associative tagged
//! BTB whose index/tag aliasing enables cross-site V2 collisions
//! ([`SetAssocBtb`]) and a cyclic (wrap-around) RSB whose over/underflow
//! predicts stale targets, ret2spec-style ([`CyclicRsb`]).
//!
//! All predictor tables are ordered maps (`BTreeMap`), never hash maps, so
//! every rendering of predictor state — `Debug` output, snapshots, future
//! serialized forms — is canonical: independent of insertion order and of
//! any per-process hash seed.

use rvz_isa::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A site identifier for a branch: the block whose terminator it is.
pub type BranchSite = usize;

// ---------------------------------------------------------------------------
// Prediction traits
// ---------------------------------------------------------------------------

/// Direction prediction for conditional branches.
///
/// Implementations must be deterministic functions of their update history:
/// verdict reproducibility across resume/steal/parallelism relies on it.
pub trait DirectionPredictor: fmt::Debug + Send + Sync {
    /// Predict the direction of the branch at `site`.
    fn predict(&self, site: BranchSite) -> bool;
    /// Update with the architecturally resolved direction.
    fn update(&mut self, site: BranchSite, taken: bool);
    /// Total predictions made so far.
    fn predictions(&self) -> u64;
    /// Total mispredictions observed so far.  A site's first-ever encounter
    /// is not counted: there was no history to predict from.
    fn mispredictions(&self) -> u64;
    /// Forget everything (power-on state).
    fn reset(&mut self);
    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn DirectionPredictor>;
}

impl Clone for Box<dyn DirectionPredictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Target prediction for indirect jumps (the structure behind Spectre V2).
pub trait TargetPredictor: fmt::Debug + Send + Sync {
    /// Predicted target for the site, if any.
    fn predict(&self, site: BranchSite) -> Option<BlockId>;
    /// Record the architecturally resolved target.
    fn update(&mut self, site: BranchSite, target: BlockId);
    /// Forget everything.
    fn reset(&mut self);
    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn TargetPredictor>;
}

impl Clone for Box<dyn TargetPredictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Return-target prediction (the structure behind Spectre V5 / ret2spec).
pub trait ReturnPredictor: fmt::Debug + Send + Sync {
    /// Record a call's return target.
    fn push(&mut self, target: BlockId);
    /// Predict (and consume) the target of the next return.
    fn pop_predict(&mut self) -> Option<BlockId>;
    /// Number of live entries.
    fn depth(&self) -> usize;
    /// Forget everything.
    fn reset(&mut self);
    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn ReturnPredictor>;
}

impl Clone for Box<dyn ReturnPredictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// Bimodal direction predictor
// ---------------------------------------------------------------------------

/// Two-bit saturating-counter predictor for conditional branches, indexed by
/// branch site (a classic bimodal predictor), optionally mixing global
/// history bits into the index (gshare-style).  With zero history bits —
/// the default — per-site counters make the predictor easy to mistrain
/// through priming, which is exactly the property the paper relies on to
/// surface Spectre V1 with few inputs (Table 5).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BranchPredictor {
    counters: BTreeMap<u64, u8>,
    history: u64,
    history_bits: u32,
    seen_sites: BTreeSet<u64>,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// New predictor with all counters weakly not-taken and no history
    /// mixing (the paper-default configuration).
    pub fn new() -> BranchPredictor {
        BranchPredictor::default()
    }

    /// New predictor mixing the given number of global-history bits into
    /// the counter index.  Values are clamped to 63 bits (the width of the
    /// history register that can be mixed without overflow).
    pub fn with_history_bits(bits: u32) -> BranchPredictor {
        BranchPredictor { history_bits: bits.min(63), ..BranchPredictor::default() }
    }

    /// The number of global-history bits mixed into the index.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    fn key(&self, site: BranchSite) -> u64 {
        // `(1 << bits) - 1` overflows for bits >= 64 and the shift must not
        // exceed 63; `history_mask` handles both, and with zero bits the
        // key degenerates to the plain site (the historical behaviour).
        let mask = history_mask(self.history_bits);
        ((site as u64) << self.history_bits) ^ (self.history & mask)
    }
}

/// All-ones mask of the low `bits` bits, saturating at 64 bits.
fn history_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl DirectionPredictor for BranchPredictor {
    fn predict(&self, site: BranchSite) -> bool {
        let c = self.counters.get(&self.key(site)).copied().unwrap_or(1);
        c >= 2
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let key = self.key(site);
        let predicted = self.predict(site);
        self.predictions += 1;
        // The first encounter of a site has no training to predict from, so
        // it does not count as a misprediction in the statistics.  (The
        // CPU's own speculation decision is made at the call site and is
        // unaffected by these counters.)
        if self.seen_sites.contains(&(site as u64)) && predicted != taken {
            self.mispredictions += 1;
        }
        self.seen_sites.insert(site as u64);
        let c = self.counters.entry(key).or_insert(1);
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | (taken as u64);
    }

    fn predictions(&self) -> u64 {
        self.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    fn reset(&mut self) {
        let bits = self.history_bits;
        *self = BranchPredictor { history_bits: bits, ..BranchPredictor::default() };
    }

    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// TAGE direction predictor
// ---------------------------------------------------------------------------

/// One tagged component of the TAGE predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TageTable {
    /// Geometric history length of this component.
    history_len: u32,
    /// Index → entry.  The index space is 2^[`Tage::INDEX_BITS`]; the map
    /// stays sparse until sites actually collide.
    entries: BTreeMap<u64, TageEntry>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TageEntry {
    tag: u64,
    /// Three-bit signed counter: 0..=7, taken when >= 4.
    ctr: u8,
    /// Two-bit useful counter guarding replacement.
    useful: u8,
}

/// A TAGE-style conditional predictor: a bimodal base table plus tagged
/// components with geometrically growing history lengths (4/8/16/32) and
/// useful-bit replacement.  The longest matching component provides the
/// prediction; on a misprediction an entry is allocated in the next longer
/// component whose slot is not useful.
///
/// Because the prediction depends on the global history register, two runs
/// that differ only in an *earlier* branch direction can predict a later
/// branch differently — the predictor-state-dependent leak scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tage {
    base: BranchPredictor,
    tables: Vec<TageTable>,
    history: u64,
    seen_sites: BTreeSet<u64>,
    predictions: u64,
    mispredictions: u64,
}

impl Tage {
    /// Index space of each tagged component (2^9 = 512 entries).
    const INDEX_BITS: u32 = 9;
    /// Tag width of each tagged component.
    const TAG_BITS: u32 = 7;
    /// Geometric history lengths of the tagged components.
    const HISTORY_LENGTHS: [u32; 4] = [4, 8, 16, 32];

    /// New TAGE predictor with empty tables.
    pub fn new() -> Tage {
        Tage {
            base: BranchPredictor::new(),
            tables: Self::HISTORY_LENGTHS
                .iter()
                .map(|&history_len| TageTable { history_len, entries: BTreeMap::new() })
                .collect(),
            history: 0,
            seen_sites: BTreeSet::new(),
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, site: BranchSite, history_len: u32) -> u64 {
        let h = self.history & history_mask(history_len);
        // Spread sites across the index space (golden-ratio multiply) and
        // fold in two phases of the history so different history lengths
        // decorrelate; without the spread, nearby sites under different
        // histories land on the same slot and thrash each other's entries.
        let spread = (site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
        let mixed = spread ^ h ^ (h >> 5) ^ ((history_len as u64) << 3);
        mixed & history_mask(Self::INDEX_BITS)
    }

    fn tag(&self, site: BranchSite, history_len: u32) -> u64 {
        let h = self.history & history_mask(history_len);
        ((site as u64) ^ h.wrapping_mul(0x9e37_79b9) ^ (h >> 11)) & history_mask(Self::TAG_BITS)
    }

    /// The longest-history component with a tag match, if any.
    fn provider(&self, site: BranchSite) -> Option<usize> {
        (0..self.tables.len()).rev().find(|&t| {
            let table = &self.tables[t];
            let idx = self.index(site, table.history_len);
            table.entries.get(&idx).is_some_and(|e| e.tag == self.tag(site, table.history_len))
        })
    }

    /// Prediction of component `t` (`None` = base bimodal) at `site`.
    fn component_predict(&self, t: Option<usize>, site: BranchSite) -> bool {
        match t {
            Some(t) => {
                let table = &self.tables[t];
                let idx = self.index(site, table.history_len);
                table.entries.get(&idx).map(|e| e.ctr >= 4).unwrap_or(false)
            }
            None => self.base.predict(site),
        }
    }

    /// The next-longest matching component below `t` (the alternate
    /// prediction source).
    fn altpred_source(&self, site: BranchSite, below: usize) -> Option<usize> {
        (0..below).rev().find(|&t| {
            let table = &self.tables[t];
            let idx = self.index(site, table.history_len);
            table.entries.get(&idx).is_some_and(|e| e.tag == self.tag(site, table.history_len))
        })
    }
}

impl Default for Tage {
    fn default() -> Self {
        Tage::new()
    }
}

impl DirectionPredictor for Tage {
    fn predict(&self, site: BranchSite) -> bool {
        self.component_predict(self.provider(site), site)
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let provider = self.provider(site);
        let predicted = self.component_predict(provider, site);
        let altpred = match provider {
            Some(p) => self.component_predict(self.altpred_source(site, p), site),
            None => self.base.predict(site),
        };
        self.predictions += 1;
        if self.seen_sites.contains(&(site as u64)) && predicted != taken {
            self.mispredictions += 1;
        }
        self.seen_sites.insert(site as u64);

        // Update the provider's counter (or the base table).
        match provider {
            Some(p) => {
                let idx = self.index(site, self.tables[p].history_len);
                if let Some(e) = self.tables[p].entries.get_mut(&idx) {
                    if taken {
                        e.ctr = (e.ctr + 1).min(7);
                    } else {
                        e.ctr = e.ctr.saturating_sub(1);
                    }
                    // The useful counter tracks whether the provider beats
                    // its alternate.
                    if predicted != altpred {
                        if predicted == taken {
                            e.useful = (e.useful + 1).min(3);
                        } else {
                            e.useful = e.useful.saturating_sub(1);
                        }
                    }
                }
            }
            None => {
                // Base-table update shares the bimodal structure but not
                // its history register or statistics.
                self.base.update(site, taken);
            }
        }

        // On a misprediction, allocate in a longer component whose slot is
        // not useful; if every candidate is useful, age them instead.
        if predicted != taken {
            let first_longer = provider.map(|p| p + 1).unwrap_or(0);
            let mut allocated = false;
            for t in first_longer..self.tables.len() {
                let history_len = self.tables[t].history_len;
                let idx = self.index(site, history_len);
                let tag = self.tag(site, history_len);
                let slot = self.tables[t].entries.get(&idx);
                if slot.is_none() || slot.is_some_and(|e| e.useful == 0) {
                    self.tables[t].entries.insert(
                        idx,
                        TageEntry { tag, ctr: if taken { 4 } else { 3 }, useful: 0 },
                    );
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in first_longer..self.tables.len() {
                    let idx = self.index(site, self.tables[t].history_len);
                    if let Some(e) = self.tables[t].entries.get_mut(&idx) {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }

        self.history = (self.history << 1) | (taken as u64);
    }

    fn predictions(&self) -> u64 {
        self.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    fn reset(&mut self) {
        *self = Tage::new();
    }

    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Loop predictor
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LoopEntry {
    /// Learned trip count (taken iterations before the exit).
    trip: u32,
    /// Taken iterations observed in the current traversal.
    current: u32,
    /// Confidence: consecutive traversals confirming `trip`.
    confidence: u8,
}

/// A loop-termination predictor: per-site trip-count table with a
/// confidence counter, falling back to a bimodal predictor until a stable
/// trip count is learned.  Once confident, it predicts *taken* for the
/// first `trip` encounters of a traversal and *not-taken* on the exit —
/// so an input-dependent trip count re-mistrains it every traversal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoopPredictor {
    loops: BTreeMap<u64, LoopEntry>,
    fallback: BranchPredictor,
    seen_sites: BTreeSet<u64>,
    predictions: u64,
    mispredictions: u64,
}

impl LoopPredictor {
    /// Confidence threshold before loop predictions are used.
    const CONFIDENT: u8 = 2;

    /// New predictor with an empty loop table.
    pub fn new() -> LoopPredictor {
        LoopPredictor::default()
    }
}

impl DirectionPredictor for LoopPredictor {
    fn predict(&self, site: BranchSite) -> bool {
        match self.loops.get(&(site as u64)) {
            Some(e) if e.confidence >= Self::CONFIDENT => e.current < e.trip,
            _ => self.fallback.predict(site),
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let predicted = self.predict(site);
        self.predictions += 1;
        if self.seen_sites.contains(&(site as u64)) && predicted != taken {
            self.mispredictions += 1;
        }
        self.seen_sites.insert(site as u64);
        let e = self.loops.entry(site as u64).or_default();
        if taken {
            e.current = e.current.saturating_add(1);
        } else {
            // The traversal ended: confirm or re-learn the trip count.
            if e.current == e.trip {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.trip = e.current;
                e.confidence = 0;
            }
            e.current = 0;
        }
        self.fallback.update(site, taken);
    }

    fn predictions(&self) -> u64 {
        self.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    fn reset(&mut self) {
        *self = LoopPredictor::default();
    }

    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Branch target buffers
// ---------------------------------------------------------------------------

/// Branch target buffer for indirect jumps: predicts the last observed
/// target of each site (the mechanism behind Spectre V2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Btb {
    targets: BTreeMap<BranchSite, BlockId>,
}

impl Btb {
    /// Empty BTB.
    pub fn new() -> Btb {
        Btb::default()
    }
}

impl TargetPredictor for Btb {
    fn predict(&self, site: BranchSite) -> Option<BlockId> {
        self.targets.get(&site).copied()
    }

    fn update(&mut self, site: BranchSite, target: BlockId) {
        self.targets.insert(site, target);
    }

    fn reset(&mut self) {
        self.targets.clear();
    }

    fn clone_box(&self) -> Box<dyn TargetPredictor> {
        Box::new(self.clone())
    }
}

/// A set-associative, tagged BTB.  The site is split into a set index (low
/// bits) and a *partial* tag; sites whose index and partial tag both match
/// share an entry, so training one site injects a target into another —
/// the cross-address-space collision behind classic Spectre V2 attacks.
///
/// With `sets` sets and `tag_bits` tag bits, sites congruent modulo
/// `sets << tag_bits` alias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocBtb {
    /// Per-set ways, most recently used first: `(partial tag, target)`.
    sets: Vec<Vec<(u64, BlockId)>>,
    ways: usize,
    index_bits: u32,
    tag_bits: u32,
}

impl SetAssocBtb {
    /// BTB with the given geometry.  `sets` is rounded up to a power of
    /// two; `ways >= 1`.
    pub fn new(sets: usize, ways: usize, tag_bits: u32) -> SetAssocBtb {
        let sets = sets.max(1).next_power_of_two();
        SetAssocBtb {
            sets: vec![Vec::new(); sets],
            ways: ways.max(1),
            index_bits: sets.trailing_zeros(),
            tag_bits: tag_bits.min(56),
        }
    }

    /// The tiny aliasing geometry used by the BTB-collision target: 2 sets
    /// × 2 ways with a 1-bit tag, so sites congruent mod 4 share an entry.
    pub fn aliasing_2x2() -> SetAssocBtb {
        SetAssocBtb::new(2, 2, 1)
    }

    fn set_of(&self, site: BranchSite) -> usize {
        site & (self.sets.len() - 1)
    }

    fn tag_of(&self, site: BranchSite) -> u64 {
        ((site as u64) >> self.index_bits) & history_mask(self.tag_bits)
    }
}

impl TargetPredictor for SetAssocBtb {
    fn predict(&self, site: BranchSite) -> Option<BlockId> {
        let tag = self.tag_of(site);
        self.sets[self.set_of(site)].iter().find(|(t, _)| *t == tag).map(|(_, b)| *b)
    }

    fn update(&mut self, site: BranchSite, target: BlockId) {
        let tag = self.tag_of(site);
        let set_idx = self.set_of(site);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            set.remove(pos);
        }
        set.insert(0, (tag, target));
        set.truncate(ways);
    }

    fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    fn clone_box(&self) -> Box<dyn TargetPredictor> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Return stack buffers
// ---------------------------------------------------------------------------

/// Return stack buffer: predicts return targets from a small hardware stack
/// (the mechanism behind Spectre V5 / ret2spec).  Overflow drops the oldest
/// entry; underflow predicts nothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rsb {
    stack: VecDeque<BlockId>,
    capacity: usize,
}

impl Rsb {
    /// RSB with the conventional 16-entry capacity.
    pub fn new() -> Rsb {
        Rsb::with_capacity(16)
    }

    /// RSB with a specific capacity.
    pub fn with_capacity(capacity: usize) -> Rsb {
        Rsb { stack: VecDeque::with_capacity(capacity), capacity }
    }
}

impl ReturnPredictor for Rsb {
    fn push(&mut self, target: BlockId) {
        if self.stack.len() == self.capacity {
            self.stack.pop_front();
        }
        self.stack.push_back(target);
    }

    fn pop_predict(&mut self) -> Option<BlockId> {
        self.stack.pop_back()
    }

    fn depth(&self) -> usize {
        self.stack.len()
    }

    fn reset(&mut self) {
        self.stack.clear();
    }

    fn clone_box(&self) -> Box<dyn ReturnPredictor> {
        Box::new(self.clone())
    }
}

impl Default for Rsb {
    fn default() -> Self {
        Rsb::new()
    }
}

/// A cyclic (wrap-around) RSB, as implemented by real parts: pushes
/// overwrite the oldest slot and pops past the live region return **stale**
/// entries instead of nothing.  A call chain deeper than the capacity
/// therefore mispredicts its outermost returns toward the *newest* return
/// sites — the deep over/underflow behaviour ret2spec exploits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CyclicRsb {
    ring: Vec<Option<BlockId>>,
    top: usize,
    live: usize,
}

impl CyclicRsb {
    /// Cyclic RSB with the given capacity (minimum 1).
    pub fn with_capacity(capacity: usize) -> CyclicRsb {
        CyclicRsb { ring: vec![None; capacity.max(1)], top: 0, live: 0 }
    }
}

impl ReturnPredictor for CyclicRsb {
    fn push(&mut self, target: BlockId) {
        self.ring[self.top] = Some(target);
        self.top = (self.top + 1) % self.ring.len();
        self.live = (self.live + 1).min(self.ring.len());
    }

    fn pop_predict(&mut self) -> Option<BlockId> {
        self.top = (self.top + self.ring.len() - 1) % self.ring.len();
        self.live = self.live.saturating_sub(1);
        // Deliberately not cleared: popping past the live region wraps
        // around and serves stale entries.
        self.ring[self.top]
    }

    fn depth(&self) -> usize {
        self.live
    }

    fn reset(&mut self) {
        for slot in &mut self.ring {
            *slot = None;
        }
        self.top = 0;
        self.live = 0;
    }

    fn clone_box(&self) -> Box<dyn ReturnPredictor> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Predictor configuration
// ---------------------------------------------------------------------------

/// Which conditional-direction predictor to instantiate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirectionKind {
    /// Bimodal two-bit counters, optionally gshare-mixed with global
    /// history ([`BranchPredictor`]).
    Bimodal {
        /// Global-history bits mixed into the counter index (0 = classic
        /// per-site bimodal, the paper default).
        history_bits: u32,
    },
    /// TAGE-style tagged geometric-history predictor ([`Tage`]).
    Tage,
    /// Loop-termination predictor with bimodal fallback
    /// ([`LoopPredictor`]).
    Loop,
}

impl Default for DirectionKind {
    fn default() -> Self {
        DirectionKind::Bimodal { history_bits: 0 }
    }
}

/// Which indirect-target predictor to instantiate.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TargetKind {
    /// Per-site last-target table ([`Btb`]), no aliasing.
    #[default]
    LastTarget,
    /// Set-associative tagged BTB ([`SetAssocBtb`]); small geometries
    /// alias sites congruent mod `sets << tag_bits`.
    SetAssociative {
        /// Number of sets (rounded up to a power of two).
        sets: usize,
        /// Ways per set.
        ways: usize,
        /// Partial-tag width in bits.
        tag_bits: u32,
    },
}

/// Which return predictor to instantiate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReturnKind {
    /// Plain stack that drops on overflow and predicts nothing on
    /// underflow ([`Rsb`]).
    Stack {
        /// Entry capacity.
        capacity: usize,
    },
    /// Cyclic wrap-around buffer that serves stale entries on deep
    /// over/underflow ([`CyclicRsb`]).
    Cyclic {
        /// Entry capacity.
        capacity: usize,
    },
}

impl Default for ReturnKind {
    fn default() -> Self {
        ReturnKind::Stack { capacity: 16 }
    }
}

/// Selection of the three prediction structures of a
/// [`SpecCpu`](crate::SpecCpu).  The default reproduces the paper-era
/// behaviour exactly (bimodal without history, last-target BTB, 16-entry
/// stack RSB), so configurations serialized before this type existed load
/// unchanged and produce byte-identical verdicts.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Conditional-direction predictor.
    #[serde(default)]
    pub direction: DirectionKind,
    /// Indirect-target predictor.
    #[serde(default)]
    pub target: TargetKind,
    /// Return predictor.
    #[serde(default)]
    pub ret: ReturnKind,
}

impl PredictorConfig {
    /// TAGE conditional prediction, default BTB/RSB.
    pub fn tage() -> PredictorConfig {
        PredictorConfig { direction: DirectionKind::Tage, ..PredictorConfig::default() }
    }

    /// Loop-predictor conditional prediction, default BTB/RSB.
    pub fn loop_predictor() -> PredictorConfig {
        PredictorConfig { direction: DirectionKind::Loop, ..PredictorConfig::default() }
    }

    /// The tiny aliasing set-associative BTB (2 sets × 2 ways, 1-bit tag),
    /// default direction/return predictors.
    pub fn aliasing_btb() -> PredictorConfig {
        PredictorConfig {
            target: TargetKind::SetAssociative { sets: 2, ways: 2, tag_bits: 1 },
            ..PredictorConfig::default()
        }
    }

    /// A cyclic RSB of the given capacity, default direction/target
    /// predictors.
    pub fn cyclic_rsb(capacity: usize) -> PredictorConfig {
        PredictorConfig { ret: ReturnKind::Cyclic { capacity }, ..PredictorConfig::default() }
    }

    /// Is this the paper-default selection?
    pub fn is_default(&self) -> bool {
        *self == PredictorConfig::default()
    }

    /// Short human-readable label of the non-default parts (empty for the
    /// default selection).  Used in CPU names and matrix-cell descriptions.
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match &self.direction {
            DirectionKind::Bimodal { history_bits: 0 } => {}
            DirectionKind::Bimodal { history_bits } => {
                parts.push(format!("gshare{history_bits}"));
            }
            DirectionKind::Tage => parts.push("TAGE".to_string()),
            DirectionKind::Loop => parts.push("loop".to_string()),
        }
        match &self.target {
            TargetKind::LastTarget => {}
            TargetKind::SetAssociative { sets, ways, tag_bits } => {
                parts.push(format!("btb{sets}x{ways}t{tag_bits}"));
            }
        }
        match &self.ret {
            ReturnKind::Stack { capacity: 16 } => {}
            ReturnKind::Stack { capacity } => parts.push(format!("rsb{capacity}")),
            ReturnKind::Cyclic { capacity } => parts.push(format!("cyclic-rsb{capacity}")),
        }
        parts.join("+")
    }

    /// Instantiate the conditional-direction predictor.
    pub fn build_direction(&self) -> Box<dyn DirectionPredictor> {
        match &self.direction {
            DirectionKind::Bimodal { history_bits: 0 } => Box::new(BranchPredictor::new()),
            DirectionKind::Bimodal { history_bits } => {
                Box::new(BranchPredictor::with_history_bits(*history_bits))
            }
            DirectionKind::Tage => Box::new(Tage::new()),
            DirectionKind::Loop => Box::new(LoopPredictor::new()),
        }
    }

    /// Instantiate the indirect-target predictor.
    pub fn build_target(&self) -> Box<dyn TargetPredictor> {
        match &self.target {
            TargetKind::LastTarget => Box::new(Btb::new()),
            TargetKind::SetAssociative { sets, ways, tag_bits } => {
                Box::new(SetAssocBtb::new(*sets, *ways, *tag_bits))
            }
        }
    }

    /// Instantiate the return predictor.
    pub fn build_return(&self) -> Box<dyn ReturnPredictor> {
        match &self.ret {
            ReturnKind::Stack { capacity } => Box::new(Rsb::with_capacity(*capacity)),
            ReturnKind::Cyclic { capacity } => Box::new(CyclicRsb::with_capacity(*capacity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_initially_predicts_not_taken() {
        let p = BranchPredictor::new();
        assert!(!p.predict(0));
    }

    #[test]
    fn predictor_trains_towards_taken() {
        let mut p = BranchPredictor::new();
        // With history involved, train repeatedly until stable.
        for _ in 0..8 {
            p.update(5, true);
        }
        assert!(p.predict(5));
        assert!(p.predictions() >= 8);
    }

    #[test]
    fn predictor_counts_mispredictions_after_first_encounter() {
        let mut p = BranchPredictor::new();
        p.update(1, true); // first-ever encounter: not a misprediction
        assert_eq!(p.mispredictions(), 0, "no history, nothing to mispredict against");
        p.update(1, false); // trained weakly-taken now predicts taken -> wrong
        assert_eq!(p.mispredictions(), 1);
        for _ in 0..8 {
            p.update(1, true);
        }
        let before = p.mispredictions();
        p.update(1, true);
        assert_eq!(p.mispredictions(), before, "well-trained branch predicts correctly");
    }

    #[test]
    fn predictor_reset() {
        let mut p = BranchPredictor::new();
        for _ in 0..8 {
            p.update(3, true);
        }
        p.reset();
        assert!(!p.predict(3));
        assert_eq!(p.predictions(), 0);
    }

    #[test]
    fn alternating_pattern_causes_mispredictions() {
        let mut p = BranchPredictor::new();
        for i in 0..32 {
            p.update(7, i % 2 == 0);
        }
        assert!(p.mispredictions() > 0);
    }

    #[test]
    fn history_mixing_takes_effect_with_nonzero_bits() {
        // With 4 history bits the same site indexes different counters
        // under different histories, so a history-correlated pattern
        // becomes predictable where the history-free bimodal keeps
        // mispredicting.
        let mut with_history = BranchPredictor::with_history_bits(4);
        assert_eq!(with_history.history_bits(), 4);
        let mut without = BranchPredictor::new();
        // Pattern: branch 9 is taken exactly when the previous outcome of
        // branch 9 was not-taken (period-2 alternation).
        let mut mis_with = 0u64;
        let mut mis_without = 0u64;
        for i in 0..64 {
            let taken = i % 2 == 0;
            let (pw, pn) = (with_history.predict(9), without.predict(9));
            if i > 8 {
                mis_with += (pw != taken) as u64;
                mis_without += (pn != taken) as u64;
            }
            with_history.update(9, taken);
            without.update(9, taken);
        }
        assert_eq!(mis_with, 0, "history-indexed counters learn the alternation");
        assert!(mis_without > 0, "history-free bimodal cannot");
        // Reset keeps the configured history width.
        with_history.reset();
        assert_eq!(with_history.history_bits(), 4);
    }

    #[test]
    fn history_mask_is_overflow_safe() {
        assert_eq!(history_mask(0), 0);
        assert_eq!(history_mask(1), 1);
        assert_eq!(history_mask(63), (1u64 << 63) - 1);
        assert_eq!(history_mask(64), u64::MAX);
        assert_eq!(history_mask(200), u64::MAX);
        // Requested widths clamp instead of overflowing the shift.
        let p = BranchPredictor::with_history_bits(200);
        assert_eq!(p.history_bits(), 63);
    }

    #[test]
    fn tage_learns_history_correlated_pattern() {
        let mut t = Tage::new();
        // Branch 3's direction equals the direction branch 2 took just
        // before it — pure history correlation, invisible to bimodal.
        let mut mispredicts_late = 0u64;
        for i in 0..256 {
            let dir2 = (i / 3) % 2 == 0; // slowly alternating
            t.update(2, dir2);
            let predicted = t.predict(3);
            if i > 128 && predicted != dir2 {
                mispredicts_late += 1;
            }
            t.update(3, dir2);
        }
        assert!(
            mispredicts_late <= 8,
            "TAGE should learn the correlation, got {mispredicts_late} late mispredictions"
        );
    }

    #[test]
    fn tage_prediction_depends_on_history() {
        // Train: after history-bit 1 at site 0, site 5 is taken; after
        // history-bit 0 it is not.  A bimodal predictor would collapse
        // both to one counter.
        let mut t = Tage::new();
        for _ in 0..64 {
            t.update(0, true);
            t.update(5, true);
            t.update(0, false);
            t.update(5, false);
        }
        // Probe the two trained history contexts: right after site 0 goes
        // taken, site 5 is predicted taken; half a cycle later (site 0
        // not-taken), the same site is predicted not-taken.  Only the
        // global history distinguishes the two probes.
        let mut probe_taken = t.clone();
        probe_taken.update(0, true);
        let mut probe_not = t.clone();
        probe_not.update(0, true);
        probe_not.update(5, true);
        probe_not.update(0, false);
        assert!(probe_taken.predict(5), "after site 0 taken, site 5 follows");
        assert!(!probe_not.predict(5), "after site 0 not-taken, site 5 follows");
        assert_ne!(
            probe_taken.predict(5),
            probe_not.predict(5),
            "prediction of site 5 must depend on the global history"
        );
    }

    #[test]
    fn tage_stats_and_reset() {
        let mut t = Tage::new();
        t.update(1, true);
        assert_eq!(t.mispredictions(), 0, "first encounter is not a misprediction");
        for i in 0..16 {
            t.update(1, i % 2 == 0);
        }
        assert!(t.predictions() >= 16);
        t.reset();
        assert_eq!(t.predictions(), 0);
        assert!(!t.predict(1));
    }

    #[test]
    fn loop_predictor_learns_trip_count() {
        let mut p = LoopPredictor::new();
        // A loop that runs exactly 3 taken iterations, repeatedly.
        for _ in 0..6 {
            for _ in 0..3 {
                p.update(4, true);
            }
            p.update(4, false);
        }
        // Confident now: predicts taken for 3 iterations, then not-taken.
        assert!(p.predict(4));
        p.update(4, true);
        assert!(p.predict(4));
        p.update(4, true);
        assert!(p.predict(4));
        p.update(4, true);
        assert!(!p.predict(4), "the learned exit iteration predicts not-taken");
    }

    #[test]
    fn loop_predictor_falls_back_to_bimodal() {
        let mut p = LoopPredictor::new();
        for _ in 0..8 {
            p.update(2, true); // never a not-taken: no trip count learned
        }
        assert!(p.predict(2), "bimodal fallback trains toward taken");
        p.reset();
        assert!(!p.predict(2));
        assert_eq!(p.predictions(), 0);
    }

    #[test]
    fn btb_predicts_last_target() {
        let mut b = Btb::new();
        assert_eq!(b.predict(0), None);
        b.update(0, BlockId(3));
        assert_eq!(b.predict(0), Some(BlockId(3)));
        b.update(0, BlockId(5));
        assert_eq!(b.predict(0), Some(BlockId(5)));
        b.reset();
        assert_eq!(b.predict(0), None);
    }

    #[test]
    fn set_assoc_btb_aliases_congruent_sites() {
        // 2 sets × 2 ways, 1-bit tag: sites congruent mod 4 share an entry.
        let mut b = SetAssocBtb::aliasing_2x2();
        b.update(1, BlockId(2));
        assert_eq!(b.predict(1), Some(BlockId(2)));
        assert_eq!(b.predict(5), Some(BlockId(2)), "site 5 aliases site 1 (mod 4)");
        assert_eq!(b.predict(3), None, "site 3 has a different tag");
        // Updating the aliased site overwrites the shared entry.
        b.update(5, BlockId(6));
        assert_eq!(b.predict(1), Some(BlockId(6)));
        b.reset();
        assert_eq!(b.predict(1), None);
    }

    #[test]
    fn set_assoc_btb_evicts_lru_way() {
        // 1 set × 2 ways, wide tags: no aliasing, but only two live entries.
        let mut b = SetAssocBtb::new(1, 2, 16);
        b.update(1, BlockId(1));
        b.update(2, BlockId(2));
        b.update(3, BlockId(3)); // evicts site 1 (least recently used)
        assert_eq!(b.predict(1), None);
        assert_eq!(b.predict(2), Some(BlockId(2)));
        assert_eq!(b.predict(3), Some(BlockId(3)));
        // A hit refreshes recency.
        b.update(2, BlockId(2));
        b.update(4, BlockId(4)); // now site 3 is the LRU victim
        assert_eq!(b.predict(3), None);
        assert_eq!(b.predict(2), Some(BlockId(2)));
    }

    #[test]
    fn rsb_predicts_in_lifo_order() {
        let mut r = Rsb::new();
        r.push(BlockId(1));
        r.push(BlockId(2));
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop_predict(), Some(BlockId(2)));
        assert_eq!(r.pop_predict(), Some(BlockId(1)));
        assert_eq!(r.pop_predict(), None);
    }

    #[test]
    fn rsb_overflows_by_dropping_oldest() {
        let mut r = Rsb::with_capacity(2);
        r.push(BlockId(1));
        r.push(BlockId(2));
        r.push(BlockId(3));
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop_predict(), Some(BlockId(3)));
        assert_eq!(r.pop_predict(), Some(BlockId(2)));
        assert_eq!(r.pop_predict(), None, "oldest entry was dropped");
    }

    #[test]
    fn rsb_ring_matches_vec_remove_semantics() {
        // The ring-buffer implementation must be behaviour-identical to the
        // old `Vec::remove(0)` version across interleaved pushes and pops.
        let capacity = 3;
        let mut ring = Rsb::with_capacity(capacity);
        let mut model: Vec<BlockId> = Vec::new();
        let ops: Vec<i64> = vec![1, 2, 3, 4, -1, 5, -1, -1, -1, -1, 6, 7, 8, 9, 10, -1, -1];
        for op in ops {
            if op >= 0 {
                if model.len() == capacity {
                    model.remove(0);
                }
                model.push(BlockId(op as usize));
                ring.push(BlockId(op as usize));
            } else {
                assert_eq!(ring.pop_predict(), model.pop());
            }
            assert_eq!(ring.depth(), model.len());
        }
    }

    #[test]
    fn cyclic_rsb_serves_stale_entries_past_underflow() {
        // 20 pushes into a 4-entry ring, then 20 pops: the first 4 pops are
        // correct LIFO, the rest wrap around into stale entries.
        let mut r = CyclicRsb::with_capacity(4);
        for i in 1..=20 {
            r.push(BlockId(i));
        }
        assert_eq!(r.depth(), 4);
        assert_eq!(r.pop_predict(), Some(BlockId(20)));
        assert_eq!(r.pop_predict(), Some(BlockId(19)));
        assert_eq!(r.pop_predict(), Some(BlockId(18)));
        assert_eq!(r.pop_predict(), Some(BlockId(17)));
        // Underflow: wraps back to the newest entries instead of None.
        assert_eq!(r.pop_predict(), Some(BlockId(20)), "stale entry after wrap-around");
        assert_eq!(r.pop_predict(), Some(BlockId(19)));
        r.reset();
        assert_eq!(r.pop_predict(), None);
    }

    #[test]
    fn cyclic_rsb_is_lifo_within_capacity() {
        let mut r = CyclicRsb::with_capacity(16);
        r.push(BlockId(1));
        r.push(BlockId(2));
        assert_eq!(r.pop_predict(), Some(BlockId(2)));
        assert_eq!(r.pop_predict(), Some(BlockId(1)));
        assert_eq!(r.pop_predict(), None, "nothing was ever written there");
    }

    #[test]
    fn predictor_config_default_reproduces_paper_trio() {
        let config = PredictorConfig::default();
        assert!(config.is_default());
        assert_eq!(config.label(), "");
        let d = config.build_direction();
        assert!(!d.predict(0), "bimodal weakly not-taken");
        let t = config.build_target();
        assert_eq!(t.predict(0), None);
        let mut r = config.build_return();
        for i in 0..20 {
            r.push(BlockId(i));
        }
        assert_eq!(r.depth(), 16, "default RSB capacity is 16");
        for _ in 0..16 {
            r.pop_predict();
        }
        assert_eq!(r.pop_predict(), None, "stack RSB predicts nothing on underflow");
    }

    #[test]
    fn predictor_config_labels() {
        assert_eq!(PredictorConfig::tage().label(), "TAGE");
        assert_eq!(PredictorConfig::loop_predictor().label(), "loop");
        assert_eq!(PredictorConfig::aliasing_btb().label(), "btb2x2t1");
        assert_eq!(PredictorConfig::cyclic_rsb(16).label(), "cyclic-rsb16");
        let combined = PredictorConfig {
            direction: DirectionKind::Tage,
            target: TargetKind::SetAssociative { sets: 2, ways: 2, tag_bits: 1 },
            ret: ReturnKind::Cyclic { capacity: 8 },
        };
        assert_eq!(combined.label(), "TAGE+btb2x2t1+cyclic-rsb8");
    }

    #[test]
    fn boxed_predictors_clone_independently() {
        let mut a: Box<dyn DirectionPredictor> = Box::new(BranchPredictor::new());
        for _ in 0..4 {
            a.update(1, true);
        }
        let mut b = a.clone();
        b.update(1, false);
        b.update(1, false);
        b.update(1, false);
        assert!(a.predict(1), "original unaffected by the clone's updates");
        assert!(!b.predict(1));
    }

    #[test]
    fn predictor_state_renders_canonically() {
        // Ordered maps make the Debug rendering a canonical encoding of the
        // state: two predictors trained to the same contents in different
        // site orders render byte-identically.  (Checkpoint digests hash
        // Debug renderings, so this is a determinism requirement, not a
        // cosmetic one.)
        let mut ascending = BranchPredictor::new();
        let mut descending = BranchPredictor::new();
        for site in 0..64usize {
            ascending.update(site, true);
        }
        for site in (0..64usize).rev() {
            descending.update(site, true);
        }
        // Same per-site state, but the history registers differ by
        // construction order — splice them to equal values before
        // comparing renderings.
        let a = format!("{ascending:?}");
        let d = format!("{descending:?}");
        let strip = |s: &str| {
            // Drop the history field, which legitimately differs.
            s.replace("history: ", "#").to_string()
        };
        let (a, d) = (strip(&a), strip(&d));
        let key_section = |s: &str| s.split("counters: ").nth(1).unwrap().to_string();
        assert_eq!(key_section(&a), key_section(&d), "counter tables must render canonically");

        let mut btb_fwd = Btb::new();
        let mut btb_rev = Btb::new();
        for site in 0..32usize {
            btb_fwd.update(site, BlockId(site % 4));
        }
        for site in (0..32usize).rev() {
            btb_rev.update(site, BlockId(site % 4));
        }
        assert_eq!(format!("{btb_fwd:?}"), format!("{btb_rev:?}"));
    }
}
