//! Regenerates the paper's code figures:
//!
//! * Figure 3 — a randomly generated test case;
//! * Figure 4 — the minimized version of a violating test case, with the
//!   leaking region identified by LFENCE insertion;
//! * Figure 5 — the V1 latency-variant gadget;
//! * §A.6 — the double-load store-bypass variant.

use revizor::{gadgets, FuzzerConfig, Postprocessor, Revizor};
use revizor::targets::Target;
use rvz_executor::ExecutorConfig;
use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
use rvz_model::Contract;

fn main() {
    // --- Figure 3: a random test case -----------------------------------
    let generator = ProgramGenerator::new(
        GeneratorConfig::paper_initial().with_basic_blocks(3).with_instructions(10),
    );
    let tc = generator.generate(2022);
    println!("=== Figure 3: randomly generated test case ===");
    println!("{}", tc.to_asm());

    // --- Figure 4: minimized violating test case -------------------------
    println!("=== Figure 4: minimized Spectre V1 counterexample ===");
    let target = Target::target5();
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let gadget = gadgets::spectre_v1();
    let inputs = InputGenerator::new(2).generate(&gadget, 11, 24);
    match fuzzer.test_with_inputs(&gadget, &inputs) {
        Ok(outcome) if outcome.confirmed_violation.is_some() => {
            let minimized = Postprocessor::new().minimize(&mut fuzzer, &gadget, &inputs);
            println!("{}", minimized.test_case.to_asm());
            println!(
                "leaking region (block, instruction): {:?}",
                minimized.leaking_region
            );
            println!(
                "inputs: {} -> {} after minimization",
                inputs.len(),
                minimized.inputs.len()
            );
        }
        _ => println!("(no violation reproduced; rerun with a different seed)"),
    }
    println!();

    // --- Figure 5 and §A.6 ------------------------------------------------
    println!("=== Figure 5: V1 latency variant (V1-var) ===");
    println!("{}", gadgets::v1_var().to_asm());
    println!("=== A.6: store-bypass double-load variant ===");
    println!("{}", gadgets::ssb_double_load().to_asm());
}
