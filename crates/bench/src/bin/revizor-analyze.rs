//! Decode a [`ViolationReport`] JSON document and print its static taint
//! analysis: speculation sources, tainted-address transmitters, the
//! speculation window and the gadget classification.
//!
//! Usage:
//!
//! ```text
//! revizor-analyze <report.json>        analyze a report — either a bare
//!                                      ViolationReport or a job result /
//!                                      `table3 --json` document whose
//!                                      cells embed `violation` objects
//! revizor-analyze --export-demo <out>  write a small deterministic V1
//!                                      counterexample report (for smoke
//!                                      tests and as an input example)
//! ```

use revizor::fuzzer::ViolationReport;
use revizor::orchestrator::CampaignMatrix;
use revizor::staticanalysis::{self, TaintReport};
use revizor::targets::Target;
use rvz_bench::json::{self, Json};
use rvz_bench::report::{violation_report_from_json, violation_report_to_json};
use rvz_model::Contract;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--export-demo" => export_demo(path),
        [path] => analyze_file(path),
        _ => {
            eprintln!("usage: revizor-analyze <report.json> | revizor-analyze --export-demo <out>");
            ExitCode::FAILURE
        }
    }
}

/// Fuzz Target 5 against CT-SEQ with a tiny deterministic budget and write
/// the first counterexample as a bare `ViolationReport` document.
fn export_demo(path: &str) -> ExitCode {
    let report = CampaignMatrix::new(7)
        .with_budget(60)
        .add_cell(Target::target5(), Contract::ct_seq())
        .run();
    let Some(violation) = report.cells.into_iter().next().and_then(|c| c.violation) else {
        eprintln!("demo campaign found no violation — seed drifted?");
        return ExitCode::FAILURE;
    };
    let doc = violation_report_to_json(&violation).render_pretty();
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote demo ViolationReport to {path}");
    ExitCode::SUCCESS
}

fn analyze_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path} is not JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = collect_reports(&doc);
    if reports.is_empty() {
        eprintln!(
            "{path} contains no decodable ViolationReport (expected a bare report \
             or a document with a `cells` array embedding `violation` objects)"
        );
        return ExitCode::FAILURE;
    }
    for (label, report) in &reports {
        print_analysis(label, report);
    }
    ExitCode::SUCCESS
}

/// Every decodable violation report in the document: the document itself
/// (bare report) or the `violation` field of each entry in its `cells`
/// array (job result payloads and `table3 --json` output).
fn collect_reports(doc: &Json) -> Vec<(String, ViolationReport)> {
    if let Ok(report) = violation_report_from_json(doc) {
        return vec![("report".to_string(), report)];
    }
    // Result payloads nest the cells one level down ({"result": {"cells": ...}}).
    let cells = doc
        .get("cells")
        .or_else(|| doc.get("result").and_then(|r| r.get("cells")))
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    cells
        .iter()
        .enumerate()
        .filter_map(|(i, cell)| {
            let report = violation_report_from_json(cell.get("violation")?).ok()?;
            let target = cell.get("target").map(|t| t.render()).unwrap_or_default();
            let contract = cell
                .get("contract")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| format!("cell {i}"));
            Some((format!("target {target} x {contract}"), report))
        })
        .collect()
}

fn print_analysis(label: &str, report: &ViolationReport) {
    let tc = &report.test_case;
    let taint = staticanalysis::analyze(tc);
    println!("=== {label}: {} violation ({}) ===", report.contract.name(), report.vulnerability);
    println!("{}", tc.to_asm());
    print_taint(&taint);
    match report.gadget.or_else(|| staticanalysis::classify_signature(tc)) {
        Some(sig) => println!(
            "gadget class: {} ({} -> {}{}{})",
            sig.label(),
            sig.source,
            sig.transmitter,
            if sig.through_load { ", through load" } else { "" },
            if sig.var_latency { ", variable latency" } else { "" },
        ),
        None => println!("gadget class: unclassified (no tainted transmitter attributable)"),
    }
    println!();
}

fn print_taint(taint: &TaintReport) {
    println!("speculation sources:");
    if taint.sources.is_empty() {
        println!("  (none)");
    }
    for s in &taint.sources {
        match s.instr {
            Some(i) => println!("  {} at block {}, instruction {}", s.kind, s.block, i),
            None => println!("  {} at block {} terminator", s.kind, s.block),
        }
    }
    println!("tainted-address transmitters:");
    if taint.transmitters.is_empty() {
        println!("  (none)");
    }
    for t in &taint.transmitters {
        let mut deps = Vec::new();
        if t.input_tainted {
            deps.push("input-tainted");
        }
        if t.transient_tainted {
            deps.push("transient-tainted");
        }
        if t.through_load {
            deps.push("through load");
        }
        println!("  {} at block {}, instruction {} ({})", t.kind, t.block, t.instr, deps.join(", "));
    }
    println!(
        "speculation window: {} position(s); leak {}",
        taint.window.len(),
        if taint.leak_possible { "POSSIBLE" } else { "impossible — filterable" },
    );
}
