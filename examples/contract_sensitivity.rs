//! Contract sensitivity (§6.6, Figure 6): CT-SEQ vs ARCH-SEQ.
//!
//! ARCH-SEQ permits exposure of non-speculatively loaded values, so it can
//! be used to test STT-like defences: it is violated by the classic V1
//! gadget (speculative load + use) but not by a gadget that only leaks a
//! non-speculatively loaded value.
//!
//! Both contracts are checked as one *slate* per input batch — the hardware
//! traces are measured once and shared, exactly as the campaign
//! orchestrator does for Table 3 cell groups.
//!
//! Run with: `cargo run --release --example contract_sensitivity`

use revizor_suite::prelude::*;

fn main() {
    let target = Target::target5();
    let contracts = [Contract::ct_seq(), Contract::arch_seq()];
    let cases = [
        ("Figure 6a: non-speculative load, speculative use", gadgets::arch_seq_insensitive()),
        ("Figure 6b: classic V1 (speculative load + use)", gadgets::arch_seq_sensitive()),
    ];

    for (name, gadget) in &cases {
        println!("=== {name} ===");
        println!("{}", gadget.to_asm());
        let first = detection::first_violations_over_seeds(
            &target,
            &contracts,
            gadget,
            (0..5u64).map(|s| s * 31 + 7),
            150,
        );
        for (contract, result) in contracts.iter().zip(&first) {
            let verdict = match result {
                Some(n) => format!("VIOLATED after {n} random inputs"),
                None => "complies (no violation within 150 inputs)".to_string(),
            };
            println!("  {:9} -> {verdict}", contract.name());
        }
        println!();
    }
    println!("Expected: both violate CT-SEQ; only Figure 6b violates ARCH-SEQ.");
}
