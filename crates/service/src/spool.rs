//! The spool: durable job state on disk.
//!
//! One **binary record chain** per job (`<job id>.rvz`): every save appends
//! one self-delimiting [`binfmt`] `KIND_SPOOL_RECORD` frame holding the
//! spec, the lifecycle phase, the latest [`MatrixCheckpoint`]s and — once
//! finished — the result payload.  Appending is crash-tolerant without a
//! rename per wave: a server killed mid-append leaves a torn tail, and
//! loading simply takes the chain's last *complete* record.  A compaction
//! pass rewrites a chain into one snapshot record (atomically: temp file +
//! rename) whenever a job reaches a terminal phase, the chain grows past
//! [`COMPACT_AFTER`] records, or a restart reloads a multi-record chain.
//!
//! Legacy one-JSON-file-per-job records (`<job id>.json`, written by older
//! servers) are still read, and are migrated to a binary snapshot on load.
//! With a retention cap ([`Spool::with_retain`], `revizor-serve
//! --spool-retain=N`) the spool also bounds its growth: once more than `N`
//! terminal (done / cancelled) jobs sit on disk, the oldest terminal
//! records are deleted.
//!
//! On startup the server rescans the directory and re-queues every
//! unfinished job, which then resumes from its checkpoint with
//! byte-identical verdicts (see [`revizor::orchestrator::MatrixRun`]).

use crate::job::JobSpec;
use revizor::orchestrator::MatrixCheckpoint;
use rvz_bench::binfmt;
use rvz_bench::json::{parse, Json};
use rvz_bench::report::matrix_checkpoint_from_json;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Chain length at which a non-terminal save compacts instead of
/// appending: long-running jobs keep their spool file at one snapshot
/// plus at most this many incremental records.
pub const COMPACT_AFTER: usize = 64;

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, not yet picked up by its shard (or re-queued after a
    /// server restart).
    Queued,
    /// Currently being driven by a shard worker.
    Running,
    /// Finished; the result payload is available.
    Done,
    /// Cancelled by a client; a terminal state like [`JobPhase::Done`],
    /// with a `{"cancelled": true}` result payload.  A restarted server
    /// keeps the record but never re-runs the job.
    Cancelled,
}

impl JobPhase {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
        }
    }

    /// Is this a terminal phase (the job will never run again)?
    pub fn terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Cancelled)
    }

    fn from_label(s: &str) -> Option<JobPhase> {
        match s {
            "queued" => Some(JobPhase::Queued),
            "running" => Some(JobPhase::Running),
            "done" => Some(JobPhase::Done),
            "cancelled" => Some(JobPhase::Cancelled),
            _ => None,
        }
    }
}

/// Lifecycle phase of one work unit (one target group of its job's
/// matrix, relocatable across worker hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitPhase {
    /// Waiting in the global unit queue for a worker lease.
    Queued,
    /// Leased to a worker host; ownership is heartbeat-renewed and the
    /// coordinator may steal the unit back if progress stalls.
    Leased,
    /// The unit's sub-run finished; its stored checkpoint is final.
    Done,
}

impl UnitPhase {
    /// Wire/spool label.
    pub fn label(self) -> &'static str {
        match self {
            UnitPhase::Queued => "queued",
            UnitPhase::Leased => "leased",
            UnitPhase::Done => "done",
        }
    }

    fn from_label(s: &str) -> Option<UnitPhase> {
        match s {
            "queued" => Some(UnitPhase::Queued),
            "leased" => Some(UnitPhase::Leased),
            "done" => Some(UnitPhase::Done),
            _ => None,
        }
    }
}

/// One work unit's durable record (fleet mode only): the unit's target
/// group, its phase and its last replicated sub-run checkpoint.
#[derive(Debug, Clone)]
pub struct UnitRecord {
    /// The Table 2 target id whose cell group this unit drives.
    pub target: u8,
    /// Phase at the time of the last save.
    pub phase: UnitPhase,
    /// Last replicated sub-run checkpoint (`None` before the first wave;
    /// the final sub-run checkpoint once the unit is done).
    pub checkpoint: Option<MatrixCheckpoint>,
}

/// One job's durable record.
#[derive(Debug, Clone)]
pub struct SpoolRecord {
    /// Job identifier (also the file stem).
    pub job: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle phase at the time of the last save.
    pub phase: JobPhase,
    /// Latest wave checkpoint, when the job has started but not finished
    /// (kept on cancellation too, as a record of where the job stopped).
    /// In fleet mode this is the merged full-matrix view of the per-unit
    /// checkpoints below.
    pub checkpoint: Option<MatrixCheckpoint>,
    /// Per-unit state, once the job's work units have materialized (fleet
    /// mode).  `None` for shard-mode jobs and legacy records — restore
    /// falls back to splitting `checkpoint` by target group.
    pub units: Option<Vec<UnitRecord>>,
    /// Result payload, when the job is done (or cancelled).
    pub result: Option<Json>,
    /// A cancel arrived while the job was running but had not yet reached
    /// a wave boundary.  Persisted so the cancellation survives a server
    /// kill: a restarted server cancels the job instead of resuming it.
    pub cancel_requested: bool,
}

/// A spool directory.
#[derive(Debug)]
pub struct Spool {
    dir: PathBuf,
    /// Keep at most this many terminal (done / cancelled) job records on
    /// disk; `None` keeps all of them forever.
    retain: Option<usize>,
    /// Records appended to each job's live chain (the compaction trigger).
    chains: Mutex<HashMap<String, usize>>,
    /// Terminal jobs on disk, oldest first (the retention pruning order).
    terminal: Mutex<Vec<String>>,
}

impl Spool {
    /// Open (creating if needed) a spool directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Spool> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Spool {
            dir,
            retain: None,
            chains: Mutex::new(HashMap::new()),
            terminal: Mutex::new(Vec::new()),
        })
    }

    /// Cap the number of terminal job records kept on disk (`None` keeps
    /// all).  Once more than `retain` done/cancelled jobs sit in the
    /// spool, the oldest terminal records are deleted at the next
    /// terminal save or [`Spool::load_all`].
    #[must_use]
    pub fn with_retain(mut self, retain: Option<usize>) -> Spool {
        self.retain = retain;
        self
    }

    /// The spool directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A job's binary record-chain path.  Job ids are server-generated
    /// (`[a-z0-9-]` only), so the file name is safe by construction.
    fn chain_path(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.rvz"))
    }

    /// A job's legacy JSON record path (older servers; read-only here
    /// apart from migration cleanup).
    fn json_path(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.json"))
    }

    /// Persist one record: append it to the job's binary chain, or —
    /// when the job reached a terminal phase, the chain grew past
    /// [`COMPACT_AFTER`] records, or this is the first record since the
    /// spool opened — compact the chain into one atomically-renamed
    /// snapshot.
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn save(&self, record: &SpoolRecord) -> io::Result<()> {
        let frame = record_frame(record);
        // Per-job saves are serialized by the core's per-job persist lock,
        // so the counter can be updated before the write; the lock is held
        // only for the bookkeeping, never across file I/O.
        let snapshot = {
            let mut chains = self.chains.lock().expect("spool chains lock");
            let count = chains.entry(record.job.clone()).or_insert(0);
            let snapshot =
                record.phase.terminal() || *count == 0 || *count >= COMPACT_AFTER;
            *count = if snapshot { 1 } else { *count + 1 };
            snapshot
        };
        if snapshot {
            self.write_snapshot(&record.job, &frame)?;
        } else {
            let mut file =
                fs::OpenOptions::new().append(true).open(self.chain_path(&record.job))?;
            file.write_all(&frame)?;
        }
        if record.phase.terminal() {
            self.note_terminal(&record.job);
            self.prune_terminal();
        }
        Ok(())
    }

    /// Atomically replace a job's chain with one snapshot record, retiring
    /// any legacy JSON record of the same job.
    fn write_snapshot(&self, job: &str, frame: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{job}.tmp"));
        fs::write(&tmp, frame)?;
        fs::rename(&tmp, self.chain_path(job))?;
        let _ = fs::remove_file(self.json_path(job));
        Ok(())
    }

    /// Remember a terminal job for retention pruning (oldest first).
    fn note_terminal(&self, job: &str) {
        let mut terminal = self.terminal.lock().expect("spool terminal lock");
        if !terminal.iter().any(|j| j == job) {
            terminal.push(job.to_string());
        }
    }

    /// Delete the oldest terminal-job records past the retention cap.
    fn prune_terminal(&self) {
        let Some(retain) = self.retain else { return };
        let pruned: Vec<String> = {
            let mut terminal = self.terminal.lock().expect("spool terminal lock");
            let excess = terminal.len().saturating_sub(retain);
            terminal.drain(..excess).collect()
        };
        for job in pruned {
            let _ = fs::remove_file(self.chain_path(&job));
            let _ = fs::remove_file(self.json_path(&job));
            self.chains.lock().expect("spool chains lock").remove(&job);
            eprintln!("spool: pruned terminal job {job} (past --spool-retain {retain})");
        }
    }

    /// Load every readable record in the spool.  Corrupt or alien files
    /// are skipped (reported on stderr) rather than failing the whole
    /// scan; a `running` phase is demoted to `queued` — the server holding
    /// it is gone.  Multi-record and torn-tail chains are compacted to one
    /// snapshot, legacy JSON records are migrated to binary, and the
    /// retention cap is applied.
    pub fn load_all(&self) -> Vec<SpoolRecord> {
        let mut records = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else { return records };
        // One candidate path per job, the binary chain shadowing a legacy
        // JSON record left by an interrupted migration.
        let mut by_job: BTreeMap<String, PathBuf> = BTreeMap::new();
        for path in entries.flatten().map(|e| e.path()) {
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()).map(str::to_string)
            else {
                continue;
            };
            match path.extension() {
                Some(e) if e == "rvz" => {
                    by_job.insert(stem, path);
                }
                Some(e) if e == "json" => {
                    by_job.entry(stem).or_insert(path);
                }
                _ => {}
            }
        }
        for (job, path) in by_job {
            let loaded = if path.extension().is_some_and(|e| e == "rvz") {
                Self::load_chain(&path)
            } else {
                Self::load_json(&path).map(|record| (record, true))
            };
            match loaded {
                Ok((record, compact)) => {
                    // Compaction on restart: collapse multi-record and
                    // torn chains (and legacy JSON files) into one clean
                    // binary snapshot.
                    if compact {
                        if let Err(e) = self.write_snapshot(&job, &record_frame(&record)) {
                            eprintln!("spool: could not compact {job}: {e}");
                        }
                    }
                    self.chains.lock().expect("spool chains lock").insert(job.clone(), 1);
                    if record.phase.terminal() {
                        self.note_terminal(&job);
                    }
                    records.push(record);
                }
                Err(e) => eprintln!("spool: skipping {}: {e}", path.display()),
            }
        }
        self.prune_terminal();
        records.retain(|r| {
            self.chains.lock().expect("spool chains lock").contains_key(&r.job)
        });
        records
    }

    /// Read a binary record chain: the last complete record wins.  Returns
    /// the record plus whether the chain deserves compaction (more than
    /// one record, or a torn/corrupt tail).
    fn load_chain(path: &Path) -> Result<(SpoolRecord, bool), String> {
        let data = fs::read(path).map_err(|e| e.to_string())?;
        let mut offset = 0;
        let mut last = None;
        let mut count = 0usize;
        let mut torn = false;
        while offset < data.len() {
            let rest = &data[offset..];
            let total = match binfmt::frame_len(rest) {
                Ok(Some(total)) if total <= rest.len() => total,
                // An incomplete header or body is a torn tail from a
                // mid-append kill: fall back to the last complete record.
                Ok(_) => {
                    torn = true;
                    break;
                }
                Err(e) => {
                    if last.is_none() {
                        return Err(e);
                    }
                    torn = true;
                    break;
                }
            };
            match record_from_frame(&rest[..total]) {
                Ok(record) => {
                    last = Some(record);
                    count += 1;
                }
                Err(e) => {
                    if last.is_none() {
                        return Err(e);
                    }
                    torn = true;
                    break;
                }
            }
            offset += total;
        }
        if torn {
            eprintln!(
                "spool: {} has a torn tail; resuming from its last complete record",
                path.display()
            );
        }
        let record = last.ok_or("empty record chain")?;
        Ok((record, torn || count > 1))
    }

    /// Read one legacy JSON record.
    fn load_json(path: &Path) -> Result<SpoolRecord, String> {
        let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
        let doc = parse(&text)?;
        let job = doc
            .get("job")
            .and_then(Json::as_str)
            .ok_or("missing `job` field")?
            .to_string();
        let phase = doc
            .get("phase")
            .and_then(Json::as_str)
            .and_then(JobPhase::from_label)
            .ok_or("missing or unknown `phase`")?;
        let spec = JobSpec::from_json(doc.get("spec").ok_or("missing `spec`")?)?;
        let checkpoint = match doc.get("checkpoint") {
            None | Some(Json::Null) => None,
            Some(cp) => Some(matrix_checkpoint_from_json(cp)?),
        };
        let units = match doc.get("units") {
            None | Some(Json::Null) => None,
            Some(units) => {
                let units = units.as_array().ok_or("`units` is not an array")?;
                let mut records = Vec::with_capacity(units.len());
                for (i, u) in units.iter().enumerate() {
                    let target = u
                        .get("target")
                        .and_then(Json::as_u64)
                        .and_then(|t| u8::try_from(t).ok())
                        .ok_or_else(|| format!("units[{i}] needs a target id"))?;
                    let phase = u
                        .get("phase")
                        .and_then(Json::as_str)
                        .and_then(UnitPhase::from_label)
                        .ok_or_else(|| format!("units[{i}] has an unknown phase"))?;
                    let checkpoint = match u.get("checkpoint") {
                        None | Some(Json::Null) => None,
                        Some(cp) => Some(matrix_checkpoint_from_json(cp)?),
                    };
                    records.push(UnitRecord { target, phase, checkpoint });
                }
                Some(records)
            }
        };
        let result = match doc.get("result") {
            None | Some(Json::Null) => None,
            Some(r) => Some(r.clone()),
        };
        let cancel_requested =
            doc.get("cancel_requested").and_then(Json::as_bool).unwrap_or(false);
        Ok(demote_for_restart(SpoolRecord {
            job,
            spec,
            phase,
            checkpoint,
            units,
            result,
            cancel_requested,
        }))
    }
}

/// Apply restart semantics to a loaded record: a `running` job means the
/// previous server died mid-job (re-queue it), and a leased unit's owner
/// died with the server — the lease is void, the unit goes back to the
/// queue and resumes from its last replicated sub-checkpoint.
fn demote_for_restart(mut record: SpoolRecord) -> SpoolRecord {
    if record.phase == JobPhase::Running {
        record.phase = JobPhase::Queued;
    }
    for unit in record.units.iter_mut().flatten() {
        if unit.phase == UnitPhase::Leased {
            unit.phase = UnitPhase::Queued;
        }
    }
    record
}

/// Encode one spool record as a self-delimiting binary frame: routing and
/// lifecycle fields in the meta section, the bulky checkpoints as typed
/// sections (the merged job view, then one section per unit, empty when
/// the unit has no checkpoint yet).
fn record_frame(record: &SpoolRecord) -> Vec<u8> {
    let meta = Json::obj()
        .field("version", 1u64)
        .field("job", record.job.as_str())
        .field("phase", record.phase.label())
        .field("spec", record.spec.to_json())
        .field(
            "units",
            record.units.as_ref().map(|units| {
                Json::Arr(
                    units
                        .iter()
                        .map(|u| {
                            Json::obj().field("target", u.target).field("phase", u.phase.label())
                        })
                        .collect(),
                )
            }),
        )
        .field("result", record.result.clone())
        .field("cancel_requested", record.cancel_requested);
    let mut frame = binfmt::FrameBuilder::new(binfmt::KIND_SPOOL_RECORD)
        .json_section(binfmt::TAG_META, &meta);
    if let Some(cp) = &record.checkpoint {
        frame = frame.checkpoint_section(binfmt::TAG_CHECKPOINT, cp);
    }
    for unit in record.units.iter().flatten() {
        let mut bytes = Vec::new();
        if let Some(cp) = &unit.checkpoint {
            binfmt::enc_checkpoint(&mut bytes, cp);
        }
        frame = frame.section(binfmt::TAG_UNIT, bytes);
    }
    frame.build()
}

/// Decode one spool record frame (restart demotion applied).
fn record_from_frame(bytes: &[u8]) -> Result<SpoolRecord, String> {
    let frame = binfmt::parse_frame(bytes)?;
    if frame.kind != binfmt::KIND_SPOOL_RECORD {
        return Err(format!("expected a spool record frame, found kind {}", frame.kind));
    }
    let meta = frame.json_section(binfmt::TAG_META, "meta")?;
    let job = meta
        .get("job")
        .and_then(Json::as_str)
        .ok_or("record meta is missing `job`")?
        .to_string();
    let phase = meta
        .get("phase")
        .and_then(Json::as_str)
        .and_then(JobPhase::from_label)
        .ok_or("record meta has a missing or unknown `phase`")?;
    let spec = JobSpec::from_json(meta.get("spec").ok_or("record meta is missing `spec`")?)?;
    let checkpoint = match frame.section(binfmt::TAG_CHECKPOINT) {
        None => None,
        Some(_) => Some(frame.checkpoint_section(binfmt::TAG_CHECKPOINT, "checkpoint")?),
    };
    let units = match meta.get("units") {
        None | Some(Json::Null) => None,
        Some(units) => {
            let units = units.as_array().ok_or("record meta `units` is not an array")?;
            let sections: Vec<&[u8]> = frame.sections(binfmt::TAG_UNIT).collect();
            if sections.len() != units.len() {
                return Err(format!(
                    "record has {} unit checkpoint sections for {} units",
                    sections.len(),
                    units.len()
                ));
            }
            let mut records = Vec::with_capacity(units.len());
            for (i, (u, bytes)) in units.iter().zip(sections).enumerate() {
                let target = u
                    .get("target")
                    .and_then(Json::as_u64)
                    .and_then(|t| u8::try_from(t).ok())
                    .ok_or_else(|| format!("units[{i}] needs a target id"))?;
                let phase = u
                    .get("phase")
                    .and_then(Json::as_str)
                    .and_then(UnitPhase::from_label)
                    .ok_or_else(|| format!("units[{i}] has an unknown phase"))?;
                let checkpoint = if bytes.is_empty() {
                    None
                } else {
                    Some(binfmt::dec_checkpoint(&mut binfmt::Reader::new(bytes))?)
                };
                records.push(UnitRecord { target, phase, checkpoint });
            }
            Some(records)
        }
    };
    let result = match meta.get("result") {
        None | Some(Json::Null) => None,
        Some(r) => Some(r.clone()),
    };
    let cancel_requested =
        meta.get("cancel_requested").and_then(Json::as_bool).unwrap_or(false);
    Ok(demote_for_restart(SpoolRecord {
        job,
        spec,
        phase,
        checkpoint,
        units,
        result,
        cancel_requested,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rvz-spool-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_through_the_spool() {
        let dir = scratch_dir("roundtrip");
        let spool = Spool::open(&dir).unwrap();
        let spec = JobSpec::new(7).with_budget(40).add_cell(5, "CT-SEQ");
        let record = SpoolRecord {
            job: "j-test-1".to_string(),
            spec: spec.clone(),
            phase: JobPhase::Queued,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].job, "j-test-1");
        assert_eq!(loaded[0].spec, spec);
        assert_eq!(loaded[0].phase, JobPhase::Queued);
        assert!(!loaded[0].cancel_requested);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_records_round_trip_and_leased_units_requeue() {
        let dir = scratch_dir("units");
        let spool = Spool::open(&dir).unwrap();
        let spec = JobSpec::new(7)
            .with_budget(40)
            .add_cell(5, "CT-SEQ")
            .add_cell(1, "CT-SEQ");
        let sub_cp = spec.to_matrix().unwrap().group_matrices()[0].initial_checkpoint();
        let record = SpoolRecord {
            job: "j-test-u".to_string(),
            spec,
            phase: JobPhase::Running,
            checkpoint: None,
            units: Some(vec![
                UnitRecord {
                    target: 5,
                    phase: UnitPhase::Leased,
                    checkpoint: Some(sub_cp.clone()),
                },
                UnitRecord { target: 1, phase: UnitPhase::Done, checkpoint: None },
            ]),
            result: None,
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        let loaded = spool.load_all().remove(0);
        let units = loaded.units.expect("units survive the round trip");
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].target, 5);
        assert_eq!(
            units[0].phase,
            UnitPhase::Queued,
            "a leased unit's owner died with the server; the lease is void"
        );
        assert_eq!(units[0].checkpoint.as_ref(), Some(&sub_cp));
        assert_eq!(units[1].target, 1);
        assert_eq!(units[1].phase, UnitPhase::Done);
        assert!(units[1].checkpoint.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_state_round_trips_and_stays_terminal() {
        let dir = scratch_dir("cancelled");
        let spool = Spool::open(&dir).unwrap();
        let record = SpoolRecord {
            job: "j-test-3".to_string(),
            spec: JobSpec::new(1).with_priority(-2).add_cell(1, "CT-SEQ"),
            phase: JobPhase::Cancelled,
            checkpoint: None,
            units: None,
            result: Some(Json::obj().field("cancelled", true)),
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        // A running record whose cancel arrived just before the kill keeps
        // the pending-cancel flag through the restart.
        let pending = SpoolRecord {
            job: "j-test-4".to_string(),
            spec: JobSpec::new(2).add_cell(1, "CT-SEQ"),
            phase: JobPhase::Running,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: true,
        };
        spool.save(&pending).unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 2);
        let cancelled = loaded.iter().find(|r| r.job == "j-test-3").unwrap();
        assert_eq!(cancelled.phase, JobPhase::Cancelled);
        assert!(cancelled.phase.terminal());
        assert_eq!(cancelled.spec.priority, -2);
        let pending = loaded.iter().find(|r| r.job == "j-test-4").unwrap();
        assert_eq!(pending.phase, JobPhase::Queued, "running demotes to queued");
        assert!(pending.cancel_requested, "the pending cancel must survive the restart");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wave_saves_append_and_a_terminal_save_compacts_the_chain() {
        let dir = scratch_dir("chain");
        let spool = Spool::open(&dir).unwrap();
        let spec = JobSpec::new(7).with_budget(40).add_cell(5, "CT-SEQ");
        let cp = spec.to_matrix().unwrap().initial_checkpoint();
        let mut record = SpoolRecord {
            job: "j-chain".to_string(),
            spec,
            phase: JobPhase::Queued,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        let snapshot_len = fs::metadata(dir.join("j-chain.rvz")).unwrap().len();
        record.phase = JobPhase::Running;
        record.checkpoint = Some(cp);
        for _ in 0..3 {
            spool.save(&record).unwrap();
        }
        let chain_len = fs::metadata(dir.join("j-chain.rvz")).unwrap().len();
        assert!(chain_len > snapshot_len, "running saves append to the chain");
        record.phase = JobPhase::Done;
        record.result = Some(Json::obj().field("cells", Json::Arr(Vec::new())));
        spool.save(&record).unwrap();
        let compacted_len = fs::metadata(dir.join("j-chain.rvz")).unwrap().len();
        assert!(
            compacted_len < chain_len,
            "a terminal save compacts the chain to one snapshot \
             ({compacted_len} vs {chain_len} bytes)"
        );
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].phase, JobPhase::Done);
        assert!(loaded[0].result.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_tail_falls_back_to_the_last_complete_record() {
        let dir = scratch_dir("torn");
        let spec = JobSpec::new(7).with_budget(40).add_cell(5, "CT-SEQ");
        let cp = spec.to_matrix().unwrap().initial_checkpoint();
        let mut record = SpoolRecord {
            job: "j-torn".to_string(),
            spec,
            phase: JobPhase::Queued,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: false,
        };
        {
            let spool = Spool::open(&dir).unwrap();
            spool.save(&record).unwrap();
            record.phase = JobPhase::Running;
            record.checkpoint = Some(cp.clone());
            spool.save(&record).unwrap();
        }
        // A server killed mid-append leaves a torn tail: half a frame.
        let path = dir.join("j-torn.rvz");
        let clean = fs::read(&path).unwrap();
        let mut torn = clean.clone();
        torn.extend_from_slice(&record_frame(&record)[..17]);
        fs::write(&path, &torn).unwrap();
        let spool = Spool::open(&dir).unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].phase, JobPhase::Queued, "running demotes to queued");
        assert_eq!(loaded[0].checkpoint.as_ref(), Some(&cp));
        // The torn chain was compacted back to one clean snapshot.
        let recompacted = fs::read(&path).unwrap();
        assert!(recompacted.len() < torn.len());
        assert!(Spool::load_chain(&path).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_json_records_load_and_migrate_to_binary() {
        let dir = scratch_dir("legacy");
        fs::create_dir_all(&dir).unwrap();
        let spec = JobSpec::new(3).add_cell(1, "CT-SEQ");
        let doc = Json::obj()
            .field("version", 1u64)
            .field("job", "j-legacy")
            .field("phase", "done")
            .field("spec", spec.to_json())
            .field("result", Json::obj().field("cells", Json::Arr(Vec::new())))
            .field("cancel_requested", false);
        fs::write(dir.join("j-legacy.json"), doc.render()).unwrap();
        let spool = Spool::open(&dir).unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].job, "j-legacy");
        assert_eq!(loaded[0].phase, JobPhase::Done);
        assert_eq!(loaded[0].spec, spec);
        assert!(dir.join("j-legacy.rvz").exists(), "legacy record migrates to binary");
        assert!(!dir.join("j-legacy.json").exists(), "migrated JSON record is retired");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_the_oldest_terminal_records() {
        let dir = scratch_dir("retain");
        let spool = Spool::open(&dir).unwrap().with_retain(Some(1));
        for (i, job) in ["j-old", "j-mid", "j-new"].iter().enumerate() {
            spool
                .save(&SpoolRecord {
                    job: (*job).to_string(),
                    spec: JobSpec::new(i as u64).add_cell(1, "CT-SEQ"),
                    phase: JobPhase::Done,
                    checkpoint: None,
                    units: None,
                    result: Some(Json::obj().field("cells", Json::Arr(Vec::new()))),
                    cancel_requested: false,
                })
                .unwrap();
        }
        // A live (non-terminal) job never counts against the cap.
        spool
            .save(&SpoolRecord {
                job: "j-live".to_string(),
                spec: JobSpec::new(9).add_cell(1, "CT-SEQ"),
                phase: JobPhase::Queued,
                checkpoint: None,
                units: None,
                result: None,
                cancel_requested: false,
            })
            .unwrap();
        assert!(!dir.join("j-old.rvz").exists(), "oldest terminal record pruned");
        assert!(!dir.join("j-mid.rvz").exists());
        assert!(dir.join("j-new.rvz").exists());
        assert!(dir.join("j-live.rvz").exists());
        let jobs: Vec<String> =
            Spool::open(&dir).unwrap().load_all().into_iter().map(|r| r.job).collect();
        assert_eq!(jobs, ["j-live", "j-new"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn running_records_are_requeued_and_corrupt_files_skipped() {
        let dir = scratch_dir("requeue");
        let spool = Spool::open(&dir).unwrap();
        let record = SpoolRecord {
            job: "j-test-2".to_string(),
            spec: JobSpec::new(1).add_cell(1, "CT-SEQ"),
            phase: JobPhase::Running,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        fs::write(dir.join("garbage.json"), "not json at all").unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 1, "corrupt file must be skipped");
        assert_eq!(loaded[0].phase, JobPhase::Queued, "running demotes to queued");
        let _ = fs::remove_dir_all(&dir);
    }
}
