//! Test-diversity analysis: pattern coverage (§5.6).
//!
//! Black-box CPUs expose no coverage signal, so Revizor estimates how likely
//! the current generator configuration is to exercise new speculative paths
//! by counting *patterns* — pairs of consecutive instructions with data or
//! control dependencies that are likely to create pipeline hazards.  A
//! pattern is covered once a test case and **two inputs of the same input
//! class** match it; when a testing round stops improving coverage, the
//! generator configuration is escalated.

use rvz_isa::IsaSubset;
use rvz_model::{ExecutionInfo, InstrKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A hazard pattern over two consecutive instructions (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Pattern {
    /// Two stores to the same address.
    StoreAfterStore,
    /// A store following a load from the same address.
    StoreAfterLoad,
    /// A load following a store to the same address.
    LoadAfterStore,
    /// Two loads from the same address.
    LoadAfterLoad,
    /// The second instruction reads a register written by the first.
    RegisterDependency,
    /// The second instruction reads the flags written by the first.
    FlagsDependency,
    /// The first instruction is a conditional branch.
    CondBranchDependency,
    /// The first instruction is an unconditional (or indirect) branch.
    UncondBranchDependency,
}

impl Pattern {
    /// All patterns.
    pub const ALL: [Pattern; 8] = [
        Pattern::StoreAfterStore,
        Pattern::StoreAfterLoad,
        Pattern::LoadAfterStore,
        Pattern::LoadAfterLoad,
        Pattern::RegisterDependency,
        Pattern::FlagsDependency,
        Pattern::CondBranchDependency,
        Pattern::UncondBranchDependency,
    ];

    /// The patterns that can occur at all for a given ISA subset (e.g. an
    /// `AR`-only subset has no memory-dependency patterns).
    pub fn relevant_for(isa: IsaSubset) -> Vec<Pattern> {
        Pattern::ALL
            .into_iter()
            .filter(|p| match p {
                Pattern::StoreAfterStore
                | Pattern::StoreAfterLoad
                | Pattern::LoadAfterStore
                | Pattern::LoadAfterLoad => isa.mem,
                Pattern::CondBranchDependency => isa.cb,
                Pattern::UncondBranchDependency => true,
                Pattern::RegisterDependency | Pattern::FlagsDependency => true,
            })
            .collect()
    }
}

impl Pattern {
    /// Parse the [`fmt::Display`] label back into a pattern (the inverse of
    /// `to_string`, used by report deserialization).
    pub fn from_name(name: &str) -> Option<Pattern> {
        Pattern::ALL.into_iter().find(|p| p.to_string() == name)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pattern::StoreAfterStore => "store-after-store",
            Pattern::StoreAfterLoad => "store-after-load",
            Pattern::LoadAfterStore => "load-after-store",
            Pattern::LoadAfterLoad => "load-after-load",
            Pattern::RegisterDependency => "register-dependency",
            Pattern::FlagsDependency => "flags-dependency",
            Pattern::CondBranchDependency => "cond-branch",
            Pattern::UncondBranchDependency => "uncond-branch",
        };
        f.write_str(s)
    }
}

/// Patterns matched by one execution (one test case with one input).
pub fn patterns_of(info: &ExecutionInfo) -> BTreeSet<Pattern> {
    let mut out = BTreeSet::new();
    for pair in info.executed.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);

        // Memory dependencies: consecutive accesses to a shared address.
        let shared_addr = a.mem_addrs.intersects(&b.mem_addrs);
        if shared_addr {
            let a_store = matches!(a.kind, InstrKind::Store | InstrKind::LoadStore);
            let b_store = matches!(b.kind, InstrKind::Store | InstrKind::LoadStore);
            let a_load = matches!(a.kind, InstrKind::Load | InstrKind::LoadStore);
            let b_load = matches!(b.kind, InstrKind::Load | InstrKind::LoadStore);
            if a_store && b_store {
                out.insert(Pattern::StoreAfterStore);
            }
            if a_load && b_store {
                out.insert(Pattern::StoreAfterLoad);
            }
            if a_store && b_load {
                out.insert(Pattern::LoadAfterStore);
            }
            if a_load && b_load {
                out.insert(Pattern::LoadAfterLoad);
            }
        }

        // Register and flags dependencies.
        if a.writes_regs.intersects(b.reads_regs) {
            out.insert(Pattern::RegisterDependency);
        }
        if a.writes_flags && b.reads_flags {
            out.insert(Pattern::FlagsDependency);
        }

        // Control dependencies: a branch followed by any instruction.
        match a.kind {
            InstrKind::CondBranch => {
                out.insert(Pattern::CondBranchDependency);
            }
            InstrKind::Jump | InstrKind::IndirectBranch => {
                out.insert(Pattern::UncondBranchDependency);
            }
            _ => {}
        }
    }
    out
}

/// Accumulated pattern coverage across a fuzzing campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternCoverage {
    covered: BTreeSet<Pattern>,
    covered_pairs: BTreeSet<(Pattern, Pattern)>,
}

impl PatternCoverage {
    /// Empty coverage.
    pub fn new() -> PatternCoverage {
        PatternCoverage::default()
    }

    /// Update coverage from one test case: `class_members` holds, for every
    /// effective input class, the execution info of its members.  A pattern
    /// counts as covered only if at least two inputs of the same class match
    /// it ("since a single input cannot form a counterexample", §5.6).
    pub fn update(&mut self, class_members: &[Vec<&ExecutionInfo>]) -> bool {
        let mut improved = false;
        let mut covered_in_tc: BTreeSet<Pattern> = BTreeSet::new();
        for members in class_members {
            if members.len() < 2 {
                continue;
            }
            let mut counts: Vec<(Pattern, usize)> = Vec::new();
            for info in members {
                for p in patterns_of(info) {
                    match counts.iter_mut().find(|(q, _)| *q == p) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((p, 1)),
                    }
                }
            }
            for (p, c) in counts {
                if c >= 2 {
                    covered_in_tc.insert(p);
                    improved |= self.covered.insert(p);
                }
            }
        }
        // Combinations of patterns covered within the same test case.
        let tc_patterns: Vec<Pattern> = covered_in_tc.into_iter().collect();
        for (i, &a) in tc_patterns.iter().enumerate() {
            for &b in &tc_patterns[i..] {
                improved |= self.covered_pairs.insert((a, b));
            }
        }
        improved
    }

    /// Patterns covered so far.
    pub fn covered(&self) -> &BTreeSet<Pattern> {
        &self.covered
    }

    /// Pattern pairs covered so far (both orders are stored canonically,
    /// smaller pattern first).
    pub fn covered_pairs(&self) -> &BTreeSet<(Pattern, Pattern)> {
        &self.covered_pairs
    }

    /// Reassemble coverage from its parts (the inverse of
    /// [`PatternCoverage::covered`] + [`PatternCoverage::covered_pairs`],
    /// used when resuming a checkpointed campaign).
    pub fn from_parts(
        covered: BTreeSet<Pattern>,
        covered_pairs: BTreeSet<(Pattern, Pattern)>,
    ) -> PatternCoverage {
        PatternCoverage { covered, covered_pairs }
    }

    /// Number of covered pattern pairs.
    pub fn covered_pair_count(&self) -> usize {
        self.covered_pairs.len()
    }

    /// Are all individual patterns relevant for the subset covered?
    pub fn all_single_covered(&self, isa: IsaSubset) -> bool {
        Pattern::relevant_for(isa).iter().all(|p| self.covered.contains(p))
    }

    /// Are all pairs of relevant patterns covered?
    pub fn all_pairs_covered(&self, isa: IsaSubset) -> bool {
        let rel = Pattern::relevant_for(isa);
        for (i, &a) in rel.iter().enumerate() {
            for &b in &rel[i..] {
                let key = if a <= b { (a, b) } else { (b, a) };
                if !self.covered_pairs.contains(&key) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for PatternCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} patterns, {} pairs", self.covered.len(), Pattern::ALL.len(), self.covered_pairs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_isa::{BlockId, Reg, RegSet};
    use rvz_model::{ExecutedInstr, MemAddrs};

    fn instr(kind: InstrKind) -> ExecutedInstr {
        ExecutedInstr {
            block: BlockId(0),
            index: Some(0),
            kind,
            reads_regs: RegSet::EMPTY,
            writes_regs: RegSet::EMPTY,
            reads_flags: false,
            writes_flags: false,
            mem_addrs: MemAddrs::default(),
        }
    }

    fn info(executed: Vec<ExecutedInstr>) -> ExecutionInfo {
        ExecutionInfo { executed, speculative_paths: 0, speculative_observations: 0 }
    }

    #[test]
    fn memory_dependency_patterns_detected() {
        let mut store = instr(InstrKind::Store);
        store.mem_addrs = MemAddrs::of(&[0x100]);
        let mut load = instr(InstrKind::Load);
        load.mem_addrs = MemAddrs::of(&[0x100]);
        let ps = patterns_of(&info(vec![store, load]));
        assert!(ps.contains(&Pattern::LoadAfterStore));
        let ps = patterns_of(&info(vec![load, load]));
        assert!(ps.contains(&Pattern::LoadAfterLoad));
        let ps = patterns_of(&info(vec![store, store]));
        assert!(ps.contains(&Pattern::StoreAfterStore));
        let ps = patterns_of(&info(vec![load, store]));
        assert!(ps.contains(&Pattern::StoreAfterLoad));
    }

    #[test]
    fn no_memory_pattern_for_disjoint_addresses() {
        let mut a = instr(InstrKind::Store);
        a.mem_addrs = MemAddrs::of(&[0x100]);
        let mut b = instr(InstrKind::Load);
        b.mem_addrs = MemAddrs::of(&[0x200]);
        assert!(patterns_of(&info(vec![a, b])).is_empty());
    }

    #[test]
    fn register_and_flags_dependencies_detected() {
        let mut a = instr(InstrKind::Alu);
        a.writes_regs = RegSet::of(&[Reg::Rax]);
        a.writes_flags = true;
        let mut b = instr(InstrKind::Alu);
        b.reads_regs = RegSet::of(&[Reg::Rax]);
        let ps = patterns_of(&info(vec![a, b]));
        assert!(ps.contains(&Pattern::RegisterDependency));
        assert!(!ps.contains(&Pattern::FlagsDependency));
        let mut c = instr(InstrKind::Alu);
        c.reads_flags = true;
        let ps = patterns_of(&info(vec![a, c]));
        assert!(ps.contains(&Pattern::FlagsDependency));
    }

    #[test]
    fn control_dependency_patterns_detected() {
        let ps = patterns_of(&info(vec![instr(InstrKind::CondBranch), instr(InstrKind::Alu)]));
        assert!(ps.contains(&Pattern::CondBranchDependency));
        let ps = patterns_of(&info(vec![instr(InstrKind::Jump), instr(InstrKind::Alu)]));
        assert!(ps.contains(&Pattern::UncondBranchDependency));
    }

    #[test]
    fn coverage_requires_two_inputs_in_a_class() {
        let mut a = instr(InstrKind::Alu);
        a.writes_regs = RegSet::of(&[Reg::Rbx]);
        let mut b = instr(InstrKind::Alu);
        b.reads_regs = RegSet::of(&[Reg::Rbx]);
        let i = info(vec![a, b]);

        let mut cov = PatternCoverage::new();
        // Singleton class: not covered.
        assert!(!cov.update(&[vec![&i]]));
        assert!(cov.covered().is_empty());
        // Two members: covered.
        assert!(cov.update(&[vec![&i, &i]]));
        assert!(cov.covered().contains(&Pattern::RegisterDependency));
        // Re-covering the same pattern does not count as improvement.
        assert!(!cov.update(&[vec![&i, &i]]));
    }

    #[test]
    fn relevant_patterns_depend_on_isa() {
        let ar = Pattern::relevant_for(IsaSubset::AR);
        assert!(!ar.contains(&Pattern::LoadAfterStore));
        assert!(!ar.contains(&Pattern::CondBranchDependency));
        assert!(ar.contains(&Pattern::RegisterDependency));
        let full = Pattern::relevant_for(IsaSubset::AR_MEM_CB_VAR);
        assert!(full.contains(&Pattern::LoadAfterStore));
        assert!(full.contains(&Pattern::CondBranchDependency));
    }

    #[test]
    fn all_single_covered_check() {
        let mut cov = PatternCoverage::new();
        let mut a = instr(InstrKind::Alu);
        a.writes_regs = RegSet::of(&[Reg::Rax]);
        a.writes_flags = true;
        let mut b = instr(InstrKind::Alu);
        b.reads_regs = RegSet::of(&[Reg::Rax]);
        b.reads_flags = true;
        let i = info(vec![a, b, instr(InstrKind::Jump), instr(InstrKind::Alu)]);
        cov.update(&[vec![&i, &i]]);
        assert!(cov.all_single_covered(IsaSubset::AR));
        assert!(!cov.all_single_covered(IsaSubset::AR_MEM_CB));
        assert!(cov.covered_pair_count() > 0);
        assert!(format!("{cov}").contains("patterns"));
    }
}
