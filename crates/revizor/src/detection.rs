//! Detection-speed harnesses (Tables 4 and 5, §6.5).

use crate::classify::VulnClass;
use crate::config::FuzzerConfig;
use crate::fuzzer::Revizor;
use crate::targets::Target;
use rvz_executor::ExecutorConfig;
use rvz_gen::InputGenerator;
use rvz_isa::TestCase;
use rvz_model::Contract;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Outcome of one detection-time measurement (one cell sample of Table 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Whether a violation was found within the budget.
    pub found: bool,
    /// Vulnerability label of the violation, if classified.
    pub vulnerability: Option<String>,
    /// Test cases executed until the first violation (or the budget).
    pub test_cases: usize,
    /// Inputs executed until the first violation (or the budget).
    pub inputs: usize,
    /// Wall-clock time until the first violation (or the budget).
    pub duration: Duration,
}

/// Run a full fuzzing campaign for `target` against `contract` and report
/// how long the first confirmed violation took (one sample of Table 4).
///
/// To keep the harness comparable to the paper's minutes-long runs while
/// executing on a simulator, the campaign starts from the generator
/// parameters of a mid-campaign testing round (a few basic blocks and a
/// dozen instructions) instead of the very first round; escalation still
/// applies on top.
pub fn detection_time(
    target: &Target,
    contract: Contract,
    seed: u64,
    max_test_cases: usize,
) -> DetectionOutcome {
    let generator = rvz_gen::GeneratorConfig::for_subset(target.isa)
        .with_basic_blocks(4)
        .with_instructions(14);
    let config = FuzzerConfig::for_target(target, contract.clone())
        .with_generator(generator)
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
        .with_inputs_per_test_case(20)
        .with_max_test_cases(max_test_cases)
        .with_seed(seed);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let report = fuzzer.run();
    DetectionOutcome {
        found: report.found_violation(),
        vulnerability: report.violation.as_ref().map(|v| v.vulnerability.to_string()),
        test_cases: report
            .violation
            .as_ref()
            .map(|v| v.test_cases_until_detection)
            .unwrap_or(report.test_cases),
        inputs: report
            .violation
            .as_ref()
            .map(|v| v.inputs_until_detection)
            .unwrap_or(report.total_inputs),
        duration: report.duration,
    }
}

/// Statistics over several detection-time samples (mean and coefficient of
/// variation, as reported in Table 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionStats {
    /// Number of samples that found a violation.
    pub detected: usize,
    /// Number of samples taken.
    pub samples: usize,
    /// Mean wall-clock time of the successful samples.
    pub mean_duration: Duration,
    /// Coefficient of variation of the successful samples' durations.
    pub coefficient_of_variation: f64,
    /// Mean number of test cases until detection.
    pub mean_test_cases: f64,
    /// Mean number of inputs until detection.
    pub mean_inputs: f64,
}

/// Repeat [`detection_time`] `samples` times with different seeds and
/// aggregate, mirroring the "mean over 10 measurements" of Table 4.
pub fn detection_stats(
    target: &Target,
    contract: Contract,
    samples: usize,
    max_test_cases: usize,
) -> DetectionStats {
    let outcomes: Vec<DetectionOutcome> = (0..samples)
        .map(|s| detection_time(target, contract.clone(), s as u64 * 7919 + 1, max_test_cases))
        .collect();
    let found: Vec<&DetectionOutcome> = outcomes.iter().filter(|o| o.found).collect();
    let durations: Vec<f64> = found.iter().map(|o| o.duration.as_secs_f64()).collect();
    let mean = if durations.is_empty() {
        0.0
    } else {
        durations.iter().sum::<f64>() / durations.len() as f64
    };
    let cv = if durations.len() < 2 || mean == 0.0 {
        0.0
    } else {
        let var =
            durations.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / durations.len() as f64;
        var.sqrt() / mean
    };
    DetectionStats {
        detected: found.len(),
        samples,
        mean_duration: Duration::from_secs_f64(mean),
        coefficient_of_variation: cv,
        mean_test_cases: if found.is_empty() {
            0.0
        } else {
            found.iter().map(|o| o.test_cases as f64).sum::<f64>() / found.len() as f64
        },
        mean_inputs: if found.is_empty() {
            0.0
        } else {
            found.iter().map(|o| o.inputs as f64).sum::<f64>() / found.len() as f64
        },
    }
}

/// Measure the minimal number of random inputs needed to surface a
/// violation on a handwritten gadget (one cell of Table 5): inputs are added
/// one at a time (with the given seed) until the relational check reports a
/// confirmed violation.
///
/// Returns `None` if no violation surfaced within `max_inputs`.
pub fn inputs_to_violation(
    target: &Target,
    contract: Contract,
    gadget: &TestCase,
    seed: u64,
    max_inputs: usize,
) -> Option<usize> {
    let config = FuzzerConfig::for_target(target, contract)
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let gen = InputGenerator::new(2);
    for n in 2..=max_inputs {
        let inputs = gen.generate(gadget, seed, n);
        match fuzzer.test_with_inputs(gadget, &inputs) {
            Ok(outcome) if outcome.confirmed_violation.is_some() => return Some(n),
            _ => continue,
        }
    }
    None
}

/// Aggregate of [`inputs_to_violation`] over several seeds (Table 5 reports
/// the average over 100 experiments; the bench harness uses a configurable
/// count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputCountStats {
    /// Gadget label.
    pub gadget: String,
    /// Seeds for which a violation surfaced.
    pub detected: usize,
    /// Seeds tried.
    pub samples: usize,
    /// Mean number of inputs (over detecting seeds).
    pub mean_inputs: f64,
    /// Minimum number of inputs observed.
    pub min_inputs: usize,
    /// Maximum number of inputs observed.
    pub max_inputs: usize,
}

/// Run [`inputs_to_violation`] for several seeds and aggregate.
pub fn input_count_stats(
    label: &str,
    target: &Target,
    contract: Contract,
    gadget: &TestCase,
    samples: usize,
    max_inputs: usize,
) -> InputCountStats {
    let counts: Vec<usize> = (0..samples)
        .filter_map(|s| {
            inputs_to_violation(target, contract.clone(), gadget, s as u64 * 104_729 + 3, max_inputs)
        })
        .collect();
    InputCountStats {
        gadget: label.to_string(),
        detected: counts.len(),
        samples,
        mean_inputs: if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f64 / counts.len() as f64
        },
        min_inputs: counts.iter().copied().min().unwrap_or(0),
        max_inputs: counts.iter().copied().max().unwrap_or(0),
    }
}

/// Expected detection result for a known vulnerability class on a target —
/// used by the Table 4 bench to label its rows.
pub fn expected_label(target: &Target) -> Option<VulnClass> {
    match target.id {
        2 => Some(VulnClass::SpectreV4),
        5 => Some(VulnClass::SpectreV1),
        7 => Some(VulnClass::Mds),
        8 => Some(VulnClass::LviNull),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    #[test]
    fn v1_gadget_needs_few_inputs() {
        let n = inputs_to_violation(
            &Target::target5(),
            Contract::ct_seq(),
            &gadgets::spectre_v1(),
            5,
            64,
        );
        assert!(n.is_some(), "V1 gadget must be detected");
        assert!(n.unwrap() <= 32, "detection should need few inputs, got {n:?}");
    }

    #[test]
    fn v4_gadget_detected_on_unpatched_target_only() {
        let gadget = gadgets::spectre_v4();
        let unpatched =
            inputs_to_violation(&Target::target2(), Contract::ct_seq(), &gadget, 5, 48);
        assert!(unpatched.is_some(), "V4 must surface on the unpatched part");
        let patched = inputs_to_violation(&Target::target4(), Contract::ct_seq(), &gadget, 5, 24);
        assert!(patched.is_none(), "the V4 patch suppresses the leak");
    }

    #[test]
    fn detection_time_finds_v1_on_target5() {
        // Detection is stochastic in the PRNG stream (the vendored `rand`
        // stand-in finds the first V1 around test case 50 for this seed);
        // the budget leaves headroom so the assertion tests the mechanism,
        // not one particular random stream.
        let outcome = detection_time(&Target::target5(), Contract::ct_seq(), 11, 120);
        assert!(outcome.found);
        assert_eq!(outcome.vulnerability.as_deref(), Some("V1"));
        assert!(outcome.test_cases >= 1);
    }

    #[test]
    fn detection_stats_aggregate() {
        // Budget sized so both sample seeds detect under the vendored PRNG
        // stream (first violations near test cases 75 and 120).
        let stats = detection_stats(&Target::target5(), Contract::ct_seq(), 2, 150);
        assert_eq!(stats.samples, 2);
        assert!(stats.detected >= 1);
        assert!(stats.mean_test_cases >= 1.0);
        assert!(stats.coefficient_of_variation >= 0.0);
    }

    #[test]
    fn expected_labels_match_table4_columns() {
        assert_eq!(expected_label(&Target::target2()), Some(VulnClass::SpectreV4));
        assert_eq!(expected_label(&Target::target5()), Some(VulnClass::SpectreV1));
        assert_eq!(expected_label(&Target::target7()), Some(VulnClass::Mds));
        assert_eq!(expected_label(&Target::target8()), Some(VulnClass::LviNull));
        assert_eq!(expected_label(&Target::target1()), None);
    }
}
