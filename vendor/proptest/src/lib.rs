//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest's API its property tests use: the `proptest!`
//! test-block macro, `prop_assert!`/`prop_assert_eq!`, `Strategy`, `Just`,
//! `prop_oneof!`, `any`, range strategies, `collection::vec`, and
//! `ProptestConfig::with_cases`.  Cases are sampled deterministically (the
//! per-test seed is derived from the test name and case index) and there is
//! no shrinking: a failing case panics with its case number and seed so it
//! can be replayed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Configuration for a `proptest!` block (subset of
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property for `cases` sampled inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests (subset of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Strategy producing one constant value (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + rand::One + PartialOrd + std::ops::Sub<Output = T>> Strategy
    for Range<T>
{
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy drawing any value of a type from raw generator bits (mirror of
/// `proptest::arbitrary::any`).
pub fn any<T: rand::FromRng>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::FromRng> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// One boxed alternative of a [`OneOf`] strategy.
pub type OneOfArm<V> = Box<dyn Fn(&mut SmallRng) -> V>;

/// Strategy choosing uniformly among boxed alternatives (the expansion of
/// [`prop_oneof!`]).
pub struct OneOf<V> {
    /// The alternative samplers.
    pub arms: Vec<OneOfArm<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut SmallRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        (self.arms[idx])(rng)
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob import mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Derive a deterministic per-test seed from the test name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sample `strategy` once for `case` of the test seeded by `seed`.
pub fn sample_case<S: Strategy>(strategy: &S, seed: u64, case: u32, arm: u32) -> S::Value {
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_add((case as u64) << 32).wrapping_add(arm as u64),
    );
    strategy.sample(&mut rng)
}

/// Assert a condition inside a `proptest!` body (mirror of
/// `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body (mirror of
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Choose uniformly among strategies (mirror of `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            arms: vec![
                $({
                    let s = $strategy;
                    ::std::boxed::Box::new(move |rng: &mut _| $crate::Strategy::sample(&s, rng))
                        as ::std::boxed::Box<dyn Fn(&mut _) -> _>
                }),+
            ],
        }
    };
}

/// Define property tests (mirror of `proptest::proptest!`).
///
/// Each property runs `cases` times with deterministically sampled inputs;
/// a `prop_assert*` failure panics with the case index and seed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($param:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(stringify!($name));
                for case in 0..cfg.cases {
                    let mut arm = 0u32;
                    $(
                        arm += 1;
                        let $param = $crate::sample_case(&$strategy, seed, case, arm);
                    )+
                    let outcome = (|| -> ::std::result::Result<(), String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{} (seed {:#x}):\n{}",
                            stringify!($name), case, cfg.cases, seed, msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, v in crate::collection::vec(0usize..4, 1..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn oneof_and_just(y in prop_oneof![Just(1u8), Just(2u8)], z in any::<u64>()) {
            prop_assert!(y == 1u8 || y == 2u8);
            prop_assert_eq!(z, z);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = 0u64..1000;
        let seed = crate::seed_for("t");
        assert_eq!(crate::sample_case(&s, seed, 7, 1), crate::sample_case(&s, seed, 7, 1));
    }
}
