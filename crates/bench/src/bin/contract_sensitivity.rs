//! Regenerates §6.6 / Figure 6: contract sensitivity.
//!
//! CT-SEQ forbids any speculative leakage, so it is violated by both the
//! gadget that leaks a *non-speculatively* loaded value (Figure 6a) and the
//! classic V1 gadget that leaks a *speculatively* loaded value (Figure 6b).
//! ARCH-SEQ permits exposure of non-speculative data, so only the classic V1
//! gadget violates it — which is exactly the property needed to test
//! STT-like defences.

use revizor::detection::inputs_to_violation;
use revizor::gadgets;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, row};
use rvz_model::Contract;

fn main() {
    let max_inputs = budget_from_args(150);
    let target = Target::target5();
    println!("Contract sensitivity (Figure 6 / §6.6), target: {target}");
    println!();

    let gadgets: Vec<(&str, rvz_isa::TestCase)> = vec![
        ("Fig 6a (non-speculative load, speculative use)", gadgets::arch_seq_insensitive()),
        ("Fig 6b (classic V1: speculative load + use)", gadgets::arch_seq_sensitive()),
    ];
    let contracts = vec![Contract::ct_seq(), Contract::arch_seq()];

    let widths = [48, 18, 18];
    println!(
        "{}",
        row(&["Gadget".into(), "CT-SEQ".into(), "ARCH-SEQ".into()], &widths)
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    for (name, gadget) in &gadgets {
        let mut line = vec![name.to_string()];
        for contract in &contracts {
            // Try a few seeds; report the first detection.
            let mut cell = "no violation".to_string();
            for seed in 0..5u64 {
                if let Some(n) =
                    inputs_to_violation(&target, contract.clone(), gadget, seed * 31 + 7, max_inputs)
                {
                    cell = format!("violated ({n} inputs)");
                    break;
                }
            }
            line.push(cell);
        }
        println!("{}", row(&line, &widths));
    }

    println!();
    println!(
        "Expected shape (paper): both gadgets violate CT-SEQ; only Fig 6b violates ARCH-SEQ."
    );
}
