//! Store buffer with memory-disambiguation state.
//!
//! Models the structure behind Spectre V4 (Speculative Store Bypass): a
//! store whose address is not yet resolved sits in the store buffer, and a
//! younger load to the same address may be predicted not to alias it and
//! speculatively read the *stale* memory value from before the store.

use serde::{Deserialize, Serialize};

/// One in-flight store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreBufferEntry {
    /// Line-aligned address written by the store.
    pub addr: u64,
    /// Access size in bytes.
    pub len: u64,
    /// Memory value at `addr` *before* the store (what a bypassing load
    /// transiently observes).
    pub stale_value: u64,
    /// Value written by the store.
    pub new_value: u64,
    /// Cycle at which the store's address becomes known to the memory
    /// disambiguation logic.
    pub addr_ready_cycle: u64,
    /// Cycle at which the store issued.
    pub issue_cycle: u64,
}

impl StoreBufferEntry {
    /// Does this store overlap the `len`-byte access at `addr`?
    pub fn overlaps(&self, addr: u64, len: u64) -> bool {
        addr < self.addr + self.len && self.addr < addr + len
    }
}

/// A bounded FIFO of in-flight stores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreBuffer {
    entries: Vec<StoreBufferEntry>,
    capacity: usize,
}

impl StoreBuffer {
    /// The 56-entry store buffer of Skylake-class parts.
    pub fn new() -> StoreBuffer {
        StoreBuffer::with_capacity(56)
    }

    /// Store buffer with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> StoreBuffer {
        StoreBuffer { entries: Vec::new(), capacity }
    }

    /// Record a store; the oldest entry is dropped (retired) if full.
    pub fn push(&mut self, entry: StoreBufferEntry) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(entry);
    }

    /// Find the youngest store that overlaps the given load and whose
    /// address is still unresolved at `load_issue_cycle` — i.e. a store the
    /// load could erroneously bypass.
    pub fn bypass_candidate(
        &self,
        addr: u64,
        len: u64,
        load_issue_cycle: u64,
    ) -> Option<StoreBufferEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.overlaps(addr, len) && e.addr_ready_cycle > load_issue_cycle)
            .copied()
    }

    /// Youngest store overlapping the access, regardless of resolution (used
    /// for store-to-load forwarding).
    pub fn forwarding_candidate(&self, addr: u64, len: u64) -> Option<StoreBufferEntry> {
        self.entries.iter().rev().find(|e| e.overlaps(addr, len)).copied()
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drain all entries (executed at serializing instructions and at the
    /// end of a run).
    pub fn drain(&mut self) {
        self.entries.clear();
    }
}

impl Default for StoreBuffer {
    fn default() -> Self {
        StoreBuffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(addr: u64, ready: u64) -> StoreBufferEntry {
        StoreBufferEntry {
            addr,
            len: 8,
            stale_value: 1,
            new_value: 2,
            addr_ready_cycle: ready,
            issue_cycle: 0,
        }
    }

    #[test]
    fn overlap_detection() {
        let e = entry(0x100, 10);
        assert!(e.overlaps(0x100, 8));
        assert!(e.overlaps(0x104, 1));
        assert!(e.overlaps(0xfc, 8), "partial overlap from below");
        assert!(!e.overlaps(0x108, 8));
        assert!(!e.overlaps(0xf8, 8));
    }

    #[test]
    fn bypass_candidate_requires_unresolved_address() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(0x100, 20));
        assert!(sb.bypass_candidate(0x100, 8, 10).is_some(), "address still unknown at cycle 10");
        assert!(sb.bypass_candidate(0x100, 8, 25).is_none(), "address resolved by cycle 25");
        assert!(sb.bypass_candidate(0x200, 8, 10).is_none(), "different address");
    }

    #[test]
    fn youngest_overlapping_store_wins() {
        let mut sb = StoreBuffer::new();
        sb.push(StoreBufferEntry { stale_value: 10, ..entry(0x100, 30) });
        sb.push(StoreBufferEntry { stale_value: 20, ..entry(0x100, 40) });
        let c = sb.bypass_candidate(0x100, 8, 5).unwrap();
        assert_eq!(c.stale_value, 20);
        let f = sb.forwarding_candidate(0x100, 8).unwrap();
        assert_eq!(f.stale_value, 20);
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut sb = StoreBuffer::with_capacity(2);
        sb.push(entry(0x0, 1));
        sb.push(entry(0x40, 1));
        sb.push(entry(0x80, 1));
        assert_eq!(sb.len(), 2);
        assert!(sb.forwarding_candidate(0x0, 8).is_none(), "oldest retired");
        assert!(sb.forwarding_candidate(0x80, 8).is_some());
    }

    #[test]
    fn drain_empties_buffer() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(0, 1));
        assert!(!sb.is_empty());
        sb.drain();
        assert!(sb.is_empty());
    }
}
