//! codec-bench: the machine-readable codec comparison, written to
//! `BENCH_codec.json` so CI can gate the binary wire format's two
//! promises — decode at least 5x faster than the JSON codec, and frames
//! at least 3x smaller on the wire — on real payloads, not synthetic
//! ones.
//!
//! ```text
//! codec_bench [--out=BENCH_codec.json] [--iters=N]
//! ```
//!
//! Two payload shapes, both produced by real campaign runs:
//!
//! * `checkpoint` — a mid-run checkpoint of Target 5 against the four
//!   Table 3 contracts with 20 measurement repetitions (the
//!   fleet-replication payload: what every wave ships to the spool).
//! * `violation` — the CT-SEQ V1 violation report, counterexample and
//!   traces included (the result-payload shape the store indexes).
//!
//! Exits non-zero when either ratio falls below its floor, so a CI step
//! running this bin *is* the regression gate.

use revizor::campaign::NoopObserver;
use revizor::orchestrator::CampaignMatrix;
use revizor::fuzzer::ViolationReport;
use revizor::targets::Target;
use rvz_bench::binfmt::{
    matrix_checkpoint_from_binary, matrix_checkpoint_to_binary, violation_report_from_binary,
    violation_report_to_binary,
};
use rvz_bench::json::{parse, Json};
use rvz_bench::report::{
    matrix_checkpoint_from_json, matrix_checkpoint_to_json, violation_report_from_json,
    violation_report_to_json,
};
use rvz_bench::{flag_from_args, flag_value_from_args};
use rvz_model::Contract;
use std::time::Instant;

const HELP: &str = "codec-bench: write the binary-vs-JSON codec comparison to BENCH_codec.json

usage: codec_bench [options]

  --out=PATH   output file (default BENCH_codec.json)
  --iters=N    timing iterations per codec (default 200)
  -h, --help   this text
";

/// Floors the binary format promises; the process exits non-zero when a
/// measured ratio falls below them.
const DECODE_SPEEDUP_FLOOR: f64 = 5.0;
const SIZE_RATIO_FLOOR: f64 = 3.0;

/// Time `f` over `iters` runs and return the mean per-run microseconds.
fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Benchmark one payload given its four codec closures; returns the
/// section document and whether both floors held.
#[allow(clippy::too_many_arguments)]
fn section(
    name: &str,
    iters: usize,
    json_bytes: usize,
    binary_bytes: usize,
    json_encode: impl FnMut(),
    json_decode: impl FnMut(),
    binary_encode: impl FnMut(),
    binary_decode: impl FnMut(),
) -> (Json, bool) {
    let json_encode_us = time_us(iters, json_encode);
    let json_decode_us = time_us(iters, json_decode);
    let binary_encode_us = time_us(iters, binary_encode);
    let binary_decode_us = time_us(iters, binary_decode);
    let decode_speedup = json_decode_us / binary_decode_us;
    let size_ratio = json_bytes as f64 / binary_bytes as f64;
    let ok = decode_speedup >= DECODE_SPEEDUP_FLOOR && size_ratio >= SIZE_RATIO_FLOOR;
    eprintln!(
        "codec-bench: {name}: decode {json_decode_us:.1}us -> {binary_decode_us:.1}us \
         ({decode_speedup:.1}x), size {json_bytes}B -> {binary_bytes}B ({size_ratio:.1}x) \
         [{}]",
        if ok { "ok" } else { "BELOW FLOOR" },
    );
    let doc = Json::obj()
        .field("payload", name)
        .field("json_bytes", json_bytes as u64)
        .field("binary_bytes", binary_bytes as u64)
        .field("size_ratio", size_ratio)
        .field("json_encode_us", json_encode_us)
        .field("json_decode_us", json_decode_us)
        .field("binary_encode_us", binary_encode_us)
        .field("binary_decode_us", binary_decode_us)
        .field("decode_speedup", decode_speedup)
        .field("ok", ok);
    (doc, ok)
}

/// The fleet-replication payload: a checkpoint two waves into a
/// four-contract Target 5 matrix with 20 measurement repetitions.
fn reps20_checkpoint() -> revizor::orchestrator::MatrixCheckpoint {
    let matrix = CampaignMatrix::new(7)
        .with_budget(40)
        .with_repetitions(20)
        .add_cells(Target::target5(), Contract::table3_contracts());
    let mut run = matrix.start();
    run.step(&mut NoopObserver);
    run.step(&mut NoopObserver);
    run.checkpoint()
}

/// The result payload the store indexes: the seed-7 CT-SEQ V1 violation.
fn v1_violation() -> ViolationReport {
    let report = CampaignMatrix::new(7)
        .with_budget(60)
        .add_cell(Target::target5(), Contract::ct_seq())
        .run();
    report.cells[0].violation.clone().expect("V1 found within 60 test cases")
}

fn main() {
    if flag_from_args("--help") || flag_from_args("-h") {
        print!("{HELP}");
        return;
    }
    let out = flag_value_from_args::<String>("--out")
        .unwrap_or_else(|| "BENCH_codec.json".to_string());
    let iters = flag_value_from_args::<usize>("--iters").unwrap_or(200);

    eprintln!("codec-bench: generating the reps-20 checkpoint and the V1 report...");
    let cp = reps20_checkpoint();
    let cp_json = matrix_checkpoint_to_json(&cp).render();
    let cp_bin = matrix_checkpoint_to_binary(&cp);
    assert_eq!(
        matrix_checkpoint_from_binary(&cp_bin).expect("checkpoint decodes"),
        cp,
        "codec must round-trip before it is worth timing"
    );
    let (cp_doc, cp_ok) = section(
        "checkpoint",
        iters,
        cp_json.len(),
        cp_bin.len(),
        || {
            matrix_checkpoint_to_json(&cp).render();
        },
        || {
            matrix_checkpoint_from_json(&parse(&cp_json).expect("parses")).expect("decodes");
        },
        || {
            matrix_checkpoint_to_binary(&cp);
        },
        || {
            matrix_checkpoint_from_binary(&cp_bin).expect("decodes");
        },
    );

    let report = v1_violation();
    let report_json = violation_report_to_json(&report).render();
    let report_bin = violation_report_to_binary(&report);
    assert_eq!(
        violation_report_from_binary(&report_bin).expect("report decodes"),
        report,
        "codec must round-trip before it is worth timing"
    );
    let (report_doc, report_ok) = section(
        "violation",
        iters,
        report_json.len(),
        report_bin.len(),
        || {
            violation_report_to_json(&report).render();
        },
        || {
            violation_report_from_json(&parse(&report_json).expect("parses")).expect("decodes");
        },
        || {
            violation_report_to_binary(&report);
        },
        || {
            violation_report_from_binary(&report_bin).expect("decodes");
        },
    );

    let doc = Json::obj()
        .field("bench", "codec")
        .field("iters", iters as u64)
        .field("decode_speedup_floor", DECODE_SPEEDUP_FLOOR)
        .field("size_ratio_floor", SIZE_RATIO_FLOOR)
        .field("checkpoint", cp_doc)
        .field("violation", report_doc);
    std::fs::write(&out, format!("{}\n", doc.render_pretty())).expect("bench file written");
    eprintln!("codec-bench: wrote {out}");
    println!("{}", doc.render_pretty());
    if !(cp_ok && report_ok) {
        eprintln!(
            "codec-bench: FAILED — a ratio fell below its floor \
             (decode >= {DECODE_SPEEDUP_FLOOR}x, size >= {SIZE_RATIO_FLOOR}x)"
        );
        std::process::exit(1);
    }
}
