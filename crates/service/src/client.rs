//! A small blocking client for the JSON-lines protocol, used by
//! `revizor-submit` and the integration tests.

use crate::job::JobSpec;
use rvz_bench::json::{parse, Json};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running `revizor-serve`.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    fn read_line(&mut self) -> Result<Json, String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        parse(line.trim_end())
    }

    /// Send one request line and read one response line.
    ///
    /// # Errors
    /// Returns transport errors or the server's `error` field.
    pub fn request(&mut self, request: &Json) -> Result<Json, String> {
        let mut line = request.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        let response = self.read_line()?;
        if response.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error");
            return Err(message.to_string());
        }
        Ok(response)
    }

    /// Submit a job; returns its id.
    ///
    /// # Errors
    /// Propagates transport/validation errors.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, String> {
        let response =
            self.request(&Json::obj().field("op", "submit").field("spec", spec.to_json()))?;
        response
            .get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or("submit response carried no job id".to_string())
    }

    /// Fetch a job's status summary.
    ///
    /// # Errors
    /// Propagates transport errors and unknown-job errors.
    pub fn status(&mut self, job: &str) -> Result<Json, String> {
        let response = self.request(&Json::obj().field("op", "status").field("job", job))?;
        response.get("status").cloned().ok_or("status response carried no status".to_string())
    }

    /// Fetch a finished job's result payload (`None` while it runs).
    ///
    /// # Errors
    /// Propagates transport errors and unknown-job errors.
    pub fn result(&mut self, job: &str) -> Result<Option<Json>, String> {
        let response = self.request(&Json::obj().field("op", "result").field("job", job))?;
        match response.get("done").and_then(Json::as_bool) {
            Some(true) => Ok(response.get("result").cloned()),
            _ => Ok(None),
        }
    }

    /// Subscribe to a job's event stream and block until its `done` event;
    /// every streamed event (including `done`) is passed to `on_event`.
    /// Returns the result payload.
    ///
    /// # Errors
    /// Propagates transport errors and unknown-job errors.
    pub fn watch(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Json, String> {
        self.request(&Json::obj().field("op", "watch").field("job", job))?;
        loop {
            let event = self.read_line()?;
            on_event(&event);
            if event.get("event").and_then(Json::as_str) == Some("done") {
                return event
                    .get("result")
                    .cloned()
                    .ok_or("done event carried no result".to_string());
            }
        }
    }
}
