//! Random test-case generation with fault-avoidance instrumentation.

use crate::config::GeneratorConfig;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rvz_isa::catalog::InstrForm;
use rvz_isa::{
    AluOp, BasicBlock, BlockId, Cond, Instr, MemOperand, Operand, Reg, SandboxLayout, Terminator,
    TestCase, Width,
};

/// Random test-case generator (§5.1).
///
/// The generation algorithm follows the paper:
/// 1. generate a random DAG of basic blocks;
/// 2. add terminators that realize the DAG;
/// 3. fill the blocks with random instructions from the ISA subset;
/// 4. instrument the result to avoid faults (mask memory addresses into the
///    sandbox, patch division operands);
/// 5. emit the final [`TestCase`].
#[derive(Debug, Clone)]
pub struct ProgramGenerator {
    config: GeneratorConfig,
}

impl ProgramGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> ProgramGenerator {
        ProgramGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Replace the configuration (used when the diversity analysis escalates
    /// the generation parameters).
    pub fn set_config(&mut self, config: GeneratorConfig) {
        self.config = config;
    }

    /// Generate a test case deterministically from a seed.
    ///
    /// A configuration pinned to a [`Scenario`](crate::Scenario) returns
    /// the scenario's gadget for every seed — the seed still drives the
    /// per-test-case *input* streams, so scenario cells fuzz inputs rather
    /// than programs.
    pub fn generate(&self, seed: u64) -> TestCase {
        if let Some(tc) = crate::scenario::pinned_test_case(&self.config) {
            return tc;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sandbox = if self.config.sandbox_pages >= 2 {
            SandboxLayout::two_pages()
        } else {
            SandboxLayout::one_page()
        };
        if self.config.randomize_line_offset {
            sandbox = sandbox.with_line_offset(rng.gen_range(0..64));
        }

        let n_blocks = self.config.basic_blocks.max(1);
        let mut blocks: Vec<BasicBlock> = (0..n_blocks).map(|i| BasicBlock::new(BlockId(i))).collect();

        // Step 1+2: DAG structure realized through terminators.
        for (i, block) in blocks.iter_mut().enumerate() {
            block.terminator = if i + 1 == n_blocks {
                Terminator::Exit
            } else if self.config.isa.cb && rng.gen_bool(0.7) {
                let taken = BlockId(rng.gen_range(i + 1..n_blocks));
                let not_taken = BlockId(i + 1);
                let cond = *Cond::ALL.choose(&mut rng).expect("non-empty");
                Terminator::CondJmp { cond, taken, not_taken }
            } else {
                Terminator::Jmp { target: BlockId(rng.gen_range(i + 1..n_blocks)) }
            };
        }

        // Step 3: pick the instruction forms to place, then distribute them.
        let body_specs = self.config.isa.body_specs();
        let mem_specs: Vec<_> = body_specs.iter().filter(|s| s.form.accesses_mem()).collect();
        let mut forms: Vec<InstrForm> = Vec::new();
        if self.config.isa.mem && !mem_specs.is_empty() {
            for _ in 0..self.config.memory_accesses.min(self.config.instructions) {
                forms.push(mem_specs.choose(&mut rng).expect("non-empty").form);
            }
        }
        while forms.len() < self.config.instructions {
            forms.push(body_specs.choose(&mut rng).expect("non-empty").form);
        }
        forms.shuffle(&mut rng);

        for (i, form) in forms.into_iter().enumerate() {
            // The branch-then-load bias steers memory accesses behind the
            // entry block's terminator (see `GeneratorConfig`); the block
            // choice consumes no randomness, so the instruction mix and all
            // operand draws are identical with the bias on or off.  It only
            // applies to subsets that generate conditional branches: without
            // them there is no mispredicted path to place a load behind, and
            // moving accesses out of the always-executed entry block into
            // possibly-skipped successors just *lowers* the access density
            // (measured: it roughly halves LVI-Null detection on Target 8).
            let block = if self.config.branch_then_load_bias
                && self.config.isa.cb
                && n_blocks > 1
                && form.accesses_mem()
            {
                1 + i % (n_blocks - 1)
            } else {
                i % n_blocks
            };
            let mut instrs = Vec::new();
            self.instantiate(form, &sandbox, &mut rng, &mut instrs);
            blocks[block].instrs.extend(instrs);
        }

        let tc = TestCase::new(blocks, sandbox).with_origin(format!(
            "generated seed={seed} isa={} instr={} bb={}",
            self.config.isa,
            self.config.instructions,
            self.config.basic_blocks
        ));
        debug_assert_eq!(tc.validate(), Ok(()));
        tc
    }

    // --- instantiation helpers ------------------------------------------------

    fn reg(&self, rng: &mut SmallRng) -> Reg {
        *self.config.registers.choose(rng).expect("at least one register")
    }

    fn imm(&self, rng: &mut SmallRng) -> i64 {
        match rng.gen_range(0..3) {
            0 => rng.gen_range(0..256),
            1 => rng.gen_range(0..=u32::MAX as i64),
            _ => rng.gen_range(-128..128),
        }
    }

    fn mem_width(&self, rng: &mut SmallRng) -> Width {
        *[Width::Byte, Width::Word, Width::Dword, Width::Qword].choose(rng).expect("non-empty")
    }

    /// Emit the sandbox-masking instrumentation for an address register and
    /// return the resulting memory operand (§5.1 step 4a).
    fn masked_mem(
        &self,
        sandbox: &SandboxLayout,
        rng: &mut SmallRng,
        out: &mut Vec<Instr>,
    ) -> MemOperand {
        let addr_reg = self.reg(rng);
        out.push(Instr::Alu {
            op: AluOp::And,
            dest: Operand::reg(addr_reg),
            src: Operand::imm(sandbox.address_mask() as i64),
            lock: false,
        });
        if sandbox.line_offset != 0 {
            out.push(Instr::Alu {
                op: AluOp::Or,
                dest: Operand::reg(addr_reg),
                src: Operand::imm(sandbox.line_offset as i64),
                lock: false,
            });
        }
        MemOperand::base_index(Reg::R14, addr_reg)
    }

    /// Emit the division-patch instrumentation (§5.1 step 4b): clear `RDX`
    /// and force the divisor to be non-zero, ruling out divide errors and
    /// quotient overflow.
    fn patched_divisor(&self, divisor: Operand, out: &mut Vec<Instr>) -> Operand {
        out.push(Instr::Alu {
            op: AluOp::And,
            dest: Operand::reg(Reg::Rdx),
            src: Operand::imm(0),
            lock: false,
        });
        out.push(Instr::Alu { op: AluOp::Or, dest: divisor, src: Operand::imm(1), lock: false });
        divisor
    }

    fn instantiate(
        &self,
        form: InstrForm,
        sandbox: &SandboxLayout,
        rng: &mut SmallRng,
        out: &mut Vec<Instr>,
    ) {
        match form {
            InstrForm::AluRegReg(op) => out.push(Instr::Alu {
                op,
                dest: Operand::reg(self.reg(rng)),
                src: Operand::reg(self.reg(rng)),
                lock: false,
            }),
            InstrForm::AluRegImm(op) => out.push(Instr::Alu {
                op,
                dest: Operand::reg(self.reg(rng)),
                src: Operand::imm(self.imm(rng)),
                lock: false,
            }),
            InstrForm::AluRegMem(op) => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Alu {
                    op,
                    dest: Operand::reg(self.reg(rng)),
                    src: Operand::mem_w(m, self.mem_width(rng)),
                    lock: false,
                });
            }
            InstrForm::AluMemReg(op) => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Alu {
                    op,
                    dest: Operand::mem_w(m, self.mem_width(rng)),
                    src: Operand::reg_w(self.reg(rng), Width::Byte),
                    lock: rng.gen_bool(0.2),
                });
            }
            InstrForm::AluMemImm(op) => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Alu {
                    op,
                    dest: Operand::mem_w(m, self.mem_width(rng)),
                    src: Operand::imm(rng.gen_range(0..128)),
                    lock: rng.gen_bool(0.2),
                });
            }
            InstrForm::MovRegReg => out.push(Instr::Mov {
                dest: Operand::reg(self.reg(rng)),
                src: Operand::reg(self.reg(rng)),
            }),
            InstrForm::MovRegImm => out.push(Instr::Mov {
                dest: Operand::reg(self.reg(rng)),
                src: Operand::imm(self.imm(rng)),
            }),
            InstrForm::MovRegMem => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Mov {
                    dest: Operand::reg(self.reg(rng)),
                    src: Operand::mem_w(m, self.mem_width(rng)),
                });
            }
            InstrForm::MovMemReg => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Mov {
                    dest: Operand::mem_w(m, self.mem_width(rng)),
                    src: Operand::reg_w(self.reg(rng), Width::Byte),
                });
            }
            InstrForm::MovMemImm => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Mov {
                    dest: Operand::mem_w(m, self.mem_width(rng)),
                    src: Operand::imm(rng.gen_range(0..128)),
                });
            }
            InstrForm::CmovRegReg(cond) => out.push(Instr::Cmov {
                cond,
                dest: self.reg(rng),
                src: Operand::reg(self.reg(rng)),
                width: Width::Qword,
            }),
            InstrForm::CmovRegMem(cond) => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Cmov {
                    cond,
                    dest: self.reg(rng),
                    src: Operand::mem(m),
                    width: Width::Qword,
                });
            }
            InstrForm::SetccReg(cond) => out.push(Instr::Setcc { cond, dest: self.reg(rng) }),
            InstrForm::CmpRegReg => out.push(Instr::Cmp {
                a: Operand::reg(self.reg(rng)),
                b: Operand::reg(self.reg(rng)),
            }),
            InstrForm::CmpRegImm => out.push(Instr::Cmp {
                a: Operand::reg(self.reg(rng)),
                b: Operand::imm(self.imm(rng)),
            }),
            InstrForm::CmpRegMem => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Cmp {
                    a: Operand::reg(self.reg(rng)),
                    b: Operand::mem_w(m, self.mem_width(rng)),
                });
            }
            InstrForm::TestRegReg => out.push(Instr::Test {
                a: Operand::reg(self.reg(rng)),
                b: Operand::reg(self.reg(rng)),
            }),
            InstrForm::TestRegImm => out.push(Instr::Test {
                a: Operand::reg(self.reg(rng)),
                b: Operand::imm(self.imm(rng)),
            }),
            InstrForm::ShiftRegImm(op) => out.push(Instr::Shift {
                op,
                dest: Operand::reg(self.reg(rng)),
                amount: Operand::imm(rng.gen_range(0..64)),
            }),
            InstrForm::UnaryReg(op) => {
                out.push(Instr::Unary { op, dest: Operand::reg(self.reg(rng)) })
            }
            InstrForm::UnaryMem(op) => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Unary { op, dest: Operand::mem_w(m, self.mem_width(rng)) });
            }
            InstrForm::DivReg => {
                let divisor = loop {
                    let r = self.reg(rng);
                    if r != Reg::Rdx {
                        break r;
                    }
                };
                let d = self.patched_divisor(Operand::reg(divisor), out);
                out.push(Instr::Div { src: d });
            }
            InstrForm::DivMem => {
                let m = self.masked_mem(sandbox, rng, out);
                let d = self.patched_divisor(Operand::mem_w(m, Width::Qword), out);
                out.push(Instr::Div { src: d });
            }
            InstrForm::ImulRegReg => out.push(Instr::Imul {
                dest: self.reg(rng),
                src: Operand::reg(self.reg(rng)),
            }),
            InstrForm::ImulRegImm => out.push(Instr::Imul {
                dest: self.reg(rng),
                src: Operand::imm(self.imm(rng)),
            }),
            InstrForm::ImulRegMem => {
                let m = self.masked_mem(sandbox, rng, out);
                out.push(Instr::Imul { dest: self.reg(rng), src: Operand::mem(m) });
            }
            InstrForm::LeaReg => {
                let index = self.reg(rng);
                out.push(Instr::Lea {
                    dest: self.reg(rng),
                    addr: MemOperand::full(Reg::R14, index, 1, rng.gen_range(0..64)),
                });
            }
            InstrForm::BswapReg => out.push(Instr::Bswap { dest: self.reg(rng) }),
            InstrForm::XchgRegReg => out.push(Instr::Xchg {
                dest: self.reg(rng),
                src: Operand::reg(self.reg(rng)),
            }),
            InstrForm::Nop => out.push(Instr::Nop),
            // Terminator forms are handled by the DAG step, not here.
            InstrForm::CondJmp(_)
            | InstrForm::Jmp
            | InstrForm::IndirectJmp
            | InstrForm::Call
            | InstrForm::Ret => out.push(Instr::Nop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_emu::Runner;
    use rvz_isa::{Input, IsaSubset};

    fn gen(cfg: GeneratorConfig) -> ProgramGenerator {
        ProgramGenerator::new(cfg)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = gen(GeneratorConfig::paper_initial());
        assert_eq!(g.generate(123), g.generate(123));
        assert_ne!(g.generate(123), g.generate(124));
    }

    #[test]
    fn generated_test_cases_are_valid() {
        let g = gen(GeneratorConfig::paper_initial().with_basic_blocks(4).with_instructions(20));
        for seed in 0..50 {
            let tc = g.generate(seed);
            assert_eq!(tc.validate(), Ok(()), "seed {seed}");
            assert!(!tc.reachable_blocks().is_empty());
        }
    }

    #[test]
    fn generated_test_cases_never_fault() {
        let cfg = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB_VAR)
            .with_instructions(16)
            .with_basic_blocks(3);
        let g = gen(cfg);
        for seed in 0..30 {
            let tc = g.generate(seed);
            for k in 0..5u64 {
                let mut input = Input::zeroed(tc.sandbox());
                for (ri, r) in Reg::GENERATOR_SET.iter().enumerate() {
                    input.set_reg(*r, seed.wrapping_mul(0x9e37) ^ (k << ri) ^ 0xffff_ffff);
                }
                Runner::new(&tc)
                    .run(&input)
                    .unwrap_or_else(|e| panic!("seed {seed} input {k} faulted: {e}"));
            }
        }
    }

    #[test]
    fn ar_subset_contains_no_memory_or_branches() {
        let g = gen(GeneratorConfig::for_subset(IsaSubset::AR).with_instructions(12));
        for seed in 0..20 {
            let tc = g.generate(seed);
            assert_eq!(tc.memory_access_count(), 0, "seed {seed}");
        }
    }

    #[test]
    fn mem_subset_meets_memory_access_quota() {
        let cfg = GeneratorConfig::for_subset(IsaSubset::AR_MEM).with_instructions(10);
        let quota = cfg.memory_accesses;
        let g = gen(cfg);
        for seed in 0..20 {
            let tc = g.generate(seed);
            assert!(tc.memory_access_count() >= quota, "seed {seed}");
        }
    }

    #[test]
    fn cb_subset_generates_conditional_branches() {
        let g = gen(GeneratorConfig::for_subset(IsaSubset::AR_CB).with_basic_blocks(6));
        let with_branches = (0..20).filter(|&s| g.generate(s).conditional_branch_count() > 0).count();
        assert!(with_branches > 10, "most DAGs should contain conditional branches");
    }

    #[test]
    fn var_subset_generates_divisions() {
        let g = gen(GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB_VAR).with_instructions(40));
        let with_div = (0..20).filter(|&s| g.generate(s).variable_latency_count() > 0).count();
        assert!(with_div > 5, "divisions should appear regularly, got {with_div}");
    }

    #[test]
    fn branch_then_load_bias_keeps_memory_out_of_the_entry_block() {
        let cfg = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB)
            .with_basic_blocks(4)
            .with_instructions(14)
            .with_branch_then_load_bias(true);
        let g = gen(cfg);
        for seed in 0..30 {
            let tc = g.generate(seed);
            let entry = &tc.blocks()[0];
            let entry_mem =
                entry.instrs.iter().filter(|i| i.reads_mem() || i.writes_mem()).count();
            assert_eq!(entry_mem, 0, "seed {seed}: entry block must stay memory-free");
            assert!(tc.memory_access_count() >= g.config().memory_accesses, "seed {seed}");
        }
    }

    #[test]
    fn branch_then_load_bias_is_inert_without_conditional_branches() {
        // No branches, no bias: for branch-free subsets the placement (and
        // everything else) is identical to the unbiased generator.
        let base = GeneratorConfig::for_subset(IsaSubset::AR_MEM)
            .with_basic_blocks(4)
            .with_instructions(14);
        let g_plain = gen(base.clone());
        let g_biased = gen(base.with_branch_then_load_bias(true));
        for seed in 0..10 {
            assert_eq!(g_plain.generate(seed), g_biased.generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn branch_then_load_bias_only_moves_instructions() {
        // The bias must not consume randomness: the same seed yields the
        // same multiset of instructions, just distributed differently.
        let base = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB)
            .with_basic_blocks(4)
            .with_instructions(14);
        let unbiased = gen(base.clone()).generate(77);
        let biased = gen(base.with_branch_then_load_bias(true)).generate(77);
        let count = |tc: &rvz_isa::TestCase| {
            (tc.instruction_count(), tc.memory_access_count(), tc.conditional_branch_count())
        };
        assert_eq!(count(&unbiased), count(&biased));
        assert_eq!(unbiased.sandbox(), biased.sandbox());
    }

    #[test]
    fn line_offset_is_stable_within_a_test_case() {
        let g = gen(GeneratorConfig::paper_initial());
        let tc = g.generate(99);
        let offset = tc.sandbox().line_offset;
        assert!(offset < 64);
    }

    #[test]
    fn origin_records_seed_and_subset() {
        let g = gen(GeneratorConfig::paper_initial());
        let tc = g.generate(7);
        assert!(tc.origin().contains("seed=7"));
        assert!(tc.origin().contains("AR+MEM+CB"));
    }

    #[test]
    fn figure3_style_listing_renders() {
        let g = gen(GeneratorConfig::paper_initial().with_basic_blocks(3).with_instructions(10));
        let asm = g.generate(11).to_asm();
        assert!(asm.contains(".bb0"));
        assert!(asm.contains("AND"));
    }
}
