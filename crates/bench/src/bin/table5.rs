//! Regenerates Table 5: the number of random inputs needed to surface a
//! violation on handwritten test cases of known vulnerabilities.
//!
//! Usage: `cargo run --release -p rvz-bench --bin table5 [seeds per gadget]`
//!
//! V1/V1.1/V2/V4/V5-ret are measured on the Prime+Probe targets; the
//! MDS gadgets use Prime+Probe+Assist on the MDS-vulnerable part (Target 7's
//! CPU), matching the paper's note that they only work on pre-9th-gen parts.

use revizor::detection::input_count_stats;
use revizor::gadgets;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, row};
use rvz_executor::MeasurementMode;
use rvz_model::Contract;

fn main() {
    let samples = budget_from_args(20);
    let max_inputs = 150;
    println!("Table 5: detection of known vulnerabilities on handwritten test cases");
    println!("  (#inputs = mean minimal number of random inputs to surface a CT-SEQ violation,");
    println!("   over {samples} input-generation seeds, capped at {max_inputs} inputs)");
    println!();

    // Gadget -> target used to test it.
    let v4_target = Target::target2(); // Skylake with the V4 patch off, Prime+Probe
    let mds_target = {
        let mut t = Target::target7(); // Skylake, assists enabled
        t.mode = MeasurementMode::prime_probe_assist();
        t
    };
    let rows: Vec<(&str, rvz_isa::TestCase, Target)> = vec![
        ("V1", gadgets::spectre_v1(), Target::target5()),
        ("V1.1", gadgets::spectre_v1_1(), Target::target5()),
        ("V2", gadgets::spectre_v2(), Target::target5()),
        ("V4", gadgets::spectre_v4(), v4_target),
        ("V5-ret", gadgets::spectre_v5_ret(), Target::target5()),
        ("MDS-LFB", gadgets::mds_lfb(), mds_target.clone()),
        ("MDS-SB", gadgets::mds_sb(), mds_target),
    ];
    let paper_inputs = [6u32, 6, 4, 62, 2, 2, 12];

    let widths = [9, 10, 10, 8, 8, 14];
    println!(
        "{}",
        row(
            &[
                "Gadget".into(),
                "mean".into(),
                "min".into(),
                "max".into(),
                "found".into(),
                "paper (#inputs)".into()
            ],
            &widths
        )
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    for (i, (label, gadget, target)) in rows.into_iter().enumerate() {
        let stats =
            input_count_stats(label, &target, Contract::ct_seq(), &gadget, samples, max_inputs);
        println!(
            "{}",
            row(
                &[
                    label.to_string(),
                    format!("{:.1}", stats.mean_inputs),
                    format!("{}", stats.min_inputs),
                    format!("{}", stats.max_inputs),
                    format!("{}/{}", stats.detected, stats.samples),
                    format!("{}", paper_inputs[i]),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "Shape check: every known vulnerability is detected with a small number of random \
         inputs, and V4 needs noticeably more inputs than the others (62 in the paper)."
    );
}
