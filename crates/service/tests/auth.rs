//! Front-end auth: servers started with a token file reject
//! unauthenticated submits, stamp jobs with the submitting tenant, and
//! scope `list`/`status`/`result`/`cancel` to the caller's own jobs —
//! cross-tenant access is indistinguishable from an unknown job.

use rvz_bench::json::Json;
use rvz_service::{Client, JobSpec, ServiceConfig, ServiceHandle};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rvz-auth-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Start a token-file server with two tenants and hand back the handle.
fn authed_service(tag: &str) -> ServiceHandle {
    let dir = scratch_dir(tag);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let token_file = dir.join("tokens.txt");
    std::fs::write(
        &token_file,
        "# test fleet tokens\n\ntok-a acme\ntok-b beta\n",
    )
    .expect("token file");
    ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
        worker_listen: None,
        token_file: Some(token_file),
        ..ServiceConfig::default()
    })
    .expect("service starts")
}

fn tiny_spec(seed: u64) -> JobSpec {
    JobSpec::new(seed).with_budget(4).add_cell(1, "CT-SEQ")
}

#[test]
fn unauthenticated_and_unknown_tokens_are_rejected() {
    let handle = authed_service("reject");
    let addr = handle.local_addr().expect("front-end bound");

    // No token: the submit is refused with a message pointing at the fix.
    let mut anon = Client::connect(addr).expect("connects");
    let err = anon.submit(&tiny_spec(3)).expect_err("tokenless submit rejected");
    assert!(err.contains("unauthorized"), "unexpected error: {err}");
    assert!(err.contains("token"), "error should name the missing field: {err}");

    // A token the file does not know is just as dead.
    let mut wrong = Client::connect(addr).expect("connects").with_token("tok-nope");
    let err = wrong.submit(&tiny_spec(3)).expect_err("unknown token rejected");
    assert!(err.contains("unauthorized"), "unexpected error: {err}");

    // Liveness probes stay open: ping needs no token even here.
    let pong = anon.request(&Json::obj().field("op", "ping")).expect("ping is exempt");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    handle.shutdown();
}

#[test]
fn tenants_only_see_their_own_jobs() {
    let handle = authed_service("scope");
    let addr = handle.local_addr().expect("front-end bound");
    let mut acme = Client::connect(addr).expect("connects").with_token("tok-a");
    let mut beta = Client::connect(addr).expect("connects").with_token("tok-b");

    let job = acme.submit(&tiny_spec(3)).expect("authenticated submit works");

    // The owner sees the job (stamped with its tenant) in status and list.
    let status = acme.status(&job).expect("owner reads status");
    assert_eq!(status.get("tenant").and_then(Json::as_str), Some("acme"));
    let listed = acme.request(&Json::obj().field("op", "list").field("token", "tok-a"))
        .expect("owner lists");
    let jobs = listed.get("jobs").and_then(Json::as_array).expect("jobs array");
    assert!(
        jobs.iter().any(|j| j.get("job").and_then(Json::as_str) == Some(job.as_str())),
        "owner's list must include its job"
    );

    // The other tenant gets "unknown job" — no existence leak — and an
    // empty list; cancelling someone else's job is equally impossible.
    for err in [
        beta.status(&job).expect_err("cross-tenant status denied"),
        beta.cancel(&job).expect_err("cross-tenant cancel denied"),
    ] {
        assert!(err.contains("unknown job"), "must not leak existence: {err}");
    }
    let listed = beta.request(&Json::obj().field("op", "list").field("token", "tok-b"))
        .expect("stranger lists");
    let jobs = listed.get("jobs").and_then(Json::as_array).expect("jobs array");
    assert!(
        !jobs.iter().any(|j| j.get("job").and_then(Json::as_str) == Some(job.as_str())),
        "another tenant's list must not show the job"
    );

    // The owner still drives the job to completion normally.
    acme.watch(&job, |_| {}).expect("owner watches to completion");
    assert!(acme.result(&job).expect("owner reads result").is_some());
    let err = beta.result(&job).expect_err("cross-tenant result denied");
    assert!(err.contains("unknown job"), "must not leak existence: {err}");

    handle.shutdown();
}
