//! Integration tests for contract semantics across crates: the §2.2 worked
//! examples, Definition 1 on a compliant CPU, and the contract hierarchy.

use revizor_suite::prelude::*;
use rvz_isa::Cond;

/// Figure 1 of the paper, masked into the sandbox.
fn figure1() -> TestCase {
    TestCaseBuilder::new()
        .block("entry", |b| {
            b.and_imm(Reg::Rax, 0b111111000000);
            b.load(Reg::Rbx, Reg::R14, Reg::Rax);
            b.cmp_imm(Reg::Rcx, 10);
            b.jcc(Cond::B, "then", "end");
        })
        .block("then", |b| {
            b.and_imm(Reg::Rcx, 0b111111000000);
            b.load(Reg::Rdx, Reg::R14, Reg::Rcx);
            b.jmp("end");
        })
        .block("end", |b| b.exit())
        .build()
}

fn input_xy(tc: &TestCase, x: u64, y: u64) -> Input {
    let mut i = Input::zeroed(tc.sandbox());
    i.set_reg(Reg::Rax, x);
    i.set_reg(Reg::Rcx, y);
    i
}

#[test]
fn section_2_2_example_traces() {
    // With x selecting 0x100 and y = 0x220-style in-bounds value, MEM-COND
    // exposes both the architectural and the speculative access, as in the
    // paper's worked example ctrace = [0x110, 0x220].
    let tc = figure1();
    let input = input_xy(&tc, 0x100, 0x200);
    let cond = ContractModel::new(Contract::mem_cond()).collect_trace(&tc, &input).unwrap();
    let base = tc.sandbox().base;
    assert_eq!(cond.mem_addrs(), vec![base + 0x100, base + 0x200]);

    let seq = ContractModel::new(Contract::mem_seq()).collect_trace(&tc, &input).unwrap();
    assert_eq!(seq.mem_addrs(), vec![base + 0x100]);
}

#[test]
fn mem_seq_counterexample_is_not_a_mem_cond_counterexample() {
    // §2.2: the V1 gadget with two inputs differing only in the speculative
    // access is a counterexample to MEM-SEQ, but not to MEM-COND (whose
    // contract traces already expose the difference).
    let tc = figure1();
    let a = input_xy(&tc, 0x100, 0x200);
    let b = input_xy(&tc, 0x100, 0x300);
    let seq = ContractModel::new(Contract::mem_seq());
    let cond = ContractModel::new(Contract::mem_cond());
    assert_eq!(seq.collect_trace(&tc, &a).unwrap(), seq.collect_trace(&tc, &b).unwrap());
    assert_ne!(cond.collect_trace(&tc, &a).unwrap(), cond.collect_trace(&tc, &b).unwrap());
}

#[test]
fn in_order_cpu_complies_with_ct_seq_on_the_v1_gadget() {
    // Definition 1 on a compliant CPU: an in-order, non-speculative part
    // produces equal hardware traces whenever contract traces are equal.
    let tc = gadgets::spectre_v1();
    let inputs = InputGenerator::new(2).generate(&tc, 3, 30);
    let model = ContractModel::new(Contract::ct_seq());
    let ctraces: Vec<_> = inputs.iter().map(|i| model.collect_trace(&tc, i).unwrap()).collect();
    let cpu = SpecCpu::new(UarchConfig::in_order());
    let mut executor = Executor::new(cpu, ExecutorConfig::fast(MeasurementMode::prime_probe()));
    let htraces = executor.collect_htraces(&tc, &inputs).unwrap();
    let result = Analyzer::new().check(&ctraces, &htraces);
    assert!(!result.has_violation(), "an in-order CPU must comply with CT-SEQ");
}

#[test]
fn speculative_cpu_violates_ct_seq_but_not_ct_cond_on_the_v1_gadget() {
    let tc = gadgets::spectre_v1();
    let target = Target::target5();
    let mk_fuzzer = |contract: Contract| {
        let config = FuzzerConfig::for_target(&target, contract)
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
        Revizor::new(target.cpu(), config).with_target(target.clone())
    };
    let inputs = InputGenerator::new(2).generate(&tc, 11, 30);

    let outcome = mk_fuzzer(Contract::ct_seq()).test_with_inputs(&tc, &inputs).unwrap();
    assert!(outcome.confirmed_violation.is_some(), "CT-SEQ must be violated");

    let outcome = mk_fuzzer(Contract::ct_cond()).test_with_inputs(&tc, &inputs).unwrap();
    assert!(
        outcome.confirmed_violation.is_none(),
        "CT-COND permits branch-prediction leakage, so the V1 gadget complies"
    );
}

#[test]
fn contract_hierarchy_is_respected_by_trace_lengths() {
    // More permissive contracts expose at least as many observations.
    let tc = figure1();
    let input = input_xy(&tc, 0x140, 0x80);
    let len = |c: Contract| ContractModel::new(c).collect_trace(&tc, &input).unwrap().len();
    assert!(len(Contract::mem_seq()) <= len(Contract::ct_seq()));
    assert!(len(Contract::ct_seq()) <= len(Contract::ct_cond()));
    assert!(len(Contract::ct_cond()) <= len(Contract::ct_cond_bpas()));
    assert!(len(Contract::ct_seq()) <= len(Contract::arch_seq()));
}

#[test]
fn table1_mem_cond_observation_and_execution_clauses() {
    // Table 1: loads and stores expose addresses; conditional jumps execute
    // the inverted condition speculatively; other instructions expose
    // nothing.
    let tc = TestCaseBuilder::new()
        .block("entry", |b| {
            b.mov_imm(Reg::Rax, 0x80);
            b.store_disp(Reg::R14, 0x40, Reg::Rax); // store exposes its address
            b.cmp_imm(Reg::Rbx, 1); // arithmetic exposes nothing
            b.jcc(Cond::E, "taken", "fallthrough");
        })
        .block("taken", |b| {
            b.load_disp(Reg::Rcx, Reg::R14, 0x80);
            b.jmp("end");
        })
        .block("fallthrough", |b| {
            b.load_disp(Reg::Rcx, Reg::R14, 0xc0);
            b.jmp("end");
        })
        .block("end", |b| b.exit())
        .build();
    let input = Input::zeroed(tc.sandbox()); // RBX=0, so the branch is not taken
    let trace = ContractModel::new(Contract::mem_cond()).collect_trace(&tc, &input).unwrap();
    let base = tc.sandbox().base;
    // store, speculative (inverted) path load, then architectural load.
    assert_eq!(trace.mem_addrs(), vec![base + 0x40, base + 0x80, base + 0xc0]);
}
