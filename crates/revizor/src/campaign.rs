//! The reusable per-test-case campaign pipeline, extracted from the fuzzer.
//!
//! One *evaluation* runs a test case through the full MRT pipeline of
//! Figure 2 — contract traces, hardware traces, relational analysis and the
//! two false-positive filters (§5.3 priming swap, §5.4 nested-speculation
//! re-check).  The pipeline is *slate-based*: it takes a set of contracts
//! and returns one outcome per contract, while collecting the hardware
//! traces only **once**.  Hardware traces depend on (CPU, test case,
//! inputs) but never on the contract, so a campaign matrix that tests one
//! target against several contracts can amortize the dominant measurement
//! cost across the whole slate:
//!
//! ```text
//!               ┌── ContractModel::collect_many ──► ctraces per contract ──┐
//!  test case ───┤        (one architectural pass)                          ├─► per-contract
//!  + inputs     └── Executor::collect_htraces ────► htraces (shared) ──────┘   analysis +
//!                                                                              filters
//! ```
//!
//! Per-contract verdicts are independent of the slate's composition: the
//! §5.3 swap check re-measures from a [noise checkpoint] taken right after
//! the shared baseline collection, which is exactly the stream position an
//! independent single-contract evaluation would have reached (the baseline
//! collection is contract-independent).  Evaluating a slate of N contracts
//! is therefore byte-identical to N independent evaluations, as long as the
//! executor resets microarchitectural state between test cases (the default
//! in every configuration).
//!
//! [noise checkpoint]: rvz_executor::NoiseCheckpoint

use crate::classify::VulnClass;
use crate::config::FuzzerConfig;
use rvz_analyzer::{AnalysisResult, Analyzer, Violation};
use rvz_emu::Fault;
use rvz_executor::{Executor, ExecutorConfig};
use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
use rvz_isa::{DecodedProgram, Input, TestCase};
use rvz_model::{CTrace, Contract, ContractModel, ExecutionInfo};
use rvz_uarch::CpuUnderTest;
use std::time::Duration;

/// Which false-positive filters the pipeline applies to reported violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlateChecks {
    /// Re-check reported violations with the priming-swap test (§5.3).
    pub priming_swap_check: bool,
    /// Re-check reported violations with nested speculation enabled in the
    /// model (§5.4).
    pub verify_with_nesting: bool,
}

impl SlateChecks {
    /// Both filters enabled (the paper's configuration).
    pub fn all() -> SlateChecks {
        SlateChecks { priming_swap_check: true, verify_with_nesting: true }
    }
}

impl Default for SlateChecks {
    fn default() -> Self {
        SlateChecks::all()
    }
}

impl From<&FuzzerConfig> for SlateChecks {
    fn from(config: &FuzzerConfig) -> SlateChecks {
        SlateChecks {
            priming_swap_check: config.priming_swap_check,
            verify_with_nesting: config.verify_with_nesting,
        }
    }
}

/// The per-contract result of one slate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractOutcome {
    /// The contract this outcome belongs to.
    pub contract: Contract,
    /// The raw relational-analysis result.
    pub analysis: AnalysisResult,
    /// A violation that survived the priming-swap and nesting re-checks.
    pub confirmed_violation: Option<Violation>,
    /// Violations discarded by the priming-swap check (§5.3).
    pub discarded_as_artifact: usize,
    /// Violations discarded by the nested-speculation re-check (§5.4).
    pub discarded_by_nesting: usize,
    /// Execution metadata of the effective input classes, for the diversity
    /// analysis (§5.6).
    pub class_members: Vec<Vec<ExecutionInfo>>,
}

/// Evaluate one test case against a slate of contracts, collecting the
/// hardware traces once and checking them against every contract.
///
/// Returns one [`ContractOutcome`] per contract, in slate order.  Each
/// outcome is byte-identical to what an independent single-contract
/// evaluation (with the same executor state at entry) would produce — see
/// the module docs for why.
///
/// # Errors
/// Propagates architectural faults (which generated test cases never
/// produce).
pub fn evaluate_slate<C: CpuUnderTest>(
    executor: &mut Executor<C>,
    analyzer: &Analyzer,
    checks: SlateChecks,
    contracts: &[Contract],
    tc: &TestCase,
    inputs: &[Input],
) -> Result<Vec<ContractOutcome>, Fault> {
    // Decode once; the program is reused by every model pass, the baseline
    // hardware collection and both false-positive filters below.
    let prog =
        DecodedProgram::decode(tc).unwrap_or_else(|e| panic!("malformed test case: {e}"));

    // Contract traces: one architectural pass per input, forking only the
    // per-contract speculative exploration.
    let mut ctraces: Vec<Vec<CTrace>> =
        (0..contracts.len()).map(|_| Vec::with_capacity(inputs.len())).collect();
    let mut infos: Vec<Vec<ExecutionInfo>> =
        (0..contracts.len()).map(|_| Vec::with_capacity(inputs.len())).collect();
    for input in inputs {
        for (k, out) in
            ContractModel::collect_many_decoded(contracts, &prog, input)?.into_iter().enumerate()
        {
            ctraces[k].push(out.trace);
            infos[k].push(out.info);
        }
    }

    // Hardware traces: collected once for the whole slate.
    let htraces = executor.collect_htraces_decoded(&prog, inputs)?;
    // Every contract's filter pass replays the noise stream from the
    // position right after the baseline collection.
    let noise_mark = executor.noise_checkpoint();

    let mut outcomes = Vec::with_capacity(contracts.len());
    for (k, contract) in contracts.iter().enumerate() {
        executor.restore_noise_checkpoint(&noise_mark);
        let analysis = analyzer.check(&ctraces[k], &htraces);

        // Execution metadata grouped by effective input class, for the
        // diversity analysis.
        let classes = analyzer.input_classes(&ctraces[k]);
        let class_members: Vec<Vec<ExecutionInfo>> = classes
            .iter()
            .filter(|c| c.is_effective())
            .map(|c| c.members.iter().map(|&i| infos[k][i].clone()).collect())
            .collect();

        let mut discarded_as_artifact = 0;
        let mut discarded_by_nesting = 0;
        let mut confirmed = None;
        for v in &analysis.violations {
            if checks.priming_swap_check
                // The unswapped baseline was already collected above; the
                // swap check re-measures only the two swapped sequences
                // (§5.3).
                && executor
                    .is_measurement_artifact_decoded(&prog, inputs, &htraces, v.input_a, v.input_b)?
            {
                discarded_as_artifact += 1;
                continue;
            }
            if checks.verify_with_nesting && contract.speculation_window > 0 {
                let nested = ContractModel::new(contract.clone().with_nesting(true));
                let a = nested.collect_decoded(&prog, &inputs[v.input_a])?.trace;
                let b = nested.collect_decoded(&prog, &inputs[v.input_b])?.trace;
                if a != b {
                    // Under the true (nested) contract the inputs are in
                    // different classes; the reported violation was an
                    // artifact of the nesting-disabled approximation.
                    discarded_by_nesting += 1;
                    continue;
                }
            }
            confirmed = Some(v.clone());
            break;
        }

        outcomes.push(ContractOutcome {
            contract: contract.clone(),
            analysis,
            confirmed_violation: confirmed,
            discarded_as_artifact,
            discarded_by_nesting,
            class_members,
        });
    }
    Ok(outcomes)
}

/// Everything a campaign worker needs to evaluate one test-case seed
/// against a contract slate, independent of every other seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SlateSpec {
    /// Test-case / input generation parameters.
    pub generator: GeneratorConfig,
    /// Executor parameters (measurement mode, repetitions, noise).
    pub executor: ExecutorConfig,
    /// Which false-positive filters to apply.
    pub checks: SlateChecks,
    /// The contracts of the slate.
    pub contracts: Vec<Contract>,
    /// Discard statically-leak-impossible test cases before any model or
    /// hardware measurement (the [`staticanalysis`](crate::staticanalysis)
    /// pre-filter).  Sound: only true negatives are discarded.
    pub speculation_filter: bool,
}

/// One evaluated campaign seed: the generated test case, its input batch
/// and the per-contract outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct SlateUnit {
    /// The campaign seed the unit was generated from.
    pub seed: u64,
    /// The generated test case.
    pub tc: TestCase,
    /// The inputs used (in priming order).
    pub inputs: Vec<Input>,
    /// One outcome per slate contract, in slate order.
    pub outcomes: Vec<ContractOutcome>,
}

/// Derivation of the per-test-case input-generation seed from the test
/// case's campaign seed.  Shared by the campaign round workers and the
/// sequential [`Revizor::test_case`](crate::Revizor::test_case) replay path
/// — the two must never diverge, or a campaign violation would not
/// reproduce through the public API.
pub(crate) fn input_stream_seed(test_case_seed: u64) -> u64 {
    test_case_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The result of evaluating one campaign seed.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedEval {
    /// The static pre-filter proved the test case leak-impossible; it was
    /// discarded before any model or hardware measurement.
    Filtered,
    /// The test case faulted (never happens for generated code).
    Faulted,
    /// The test case was measured.
    Measured(Box<SlateUnit>),
}

impl SeedEval {
    /// The measured unit, if any.
    pub fn into_unit(self) -> Option<SlateUnit> {
        match self {
            SeedEval::Measured(unit) => Some(*unit),
            _ => None,
        }
    }

    /// Was the seed discarded by the static pre-filter?
    pub fn is_filtered(&self) -> bool {
        matches!(self, SeedEval::Filtered)
    }
}

/// Evaluate one campaign seed with a fresh executor built from a clone of
/// the CPU under test.
///
/// This is the parallel scheduling building block of both the round driver
/// and the matrix orchestrator: the result is a pure function of
/// `(cpu_template, spec, seed)` — the generated test case, the input batch
/// and the synthetic-noise stream all derive from `seed` alone — so units
/// can be evaluated on any worker, in any order, with identical results.
/// The static pre-filter (when enabled) runs on the generated program
/// before input generation, so filtered seeds cost only the program
/// generation; because every unit is independent, skipping one cannot
/// perturb any other unit's verdict.
pub fn evaluate_seed<C: CpuUnderTest + Clone>(
    cpu_template: &C,
    spec: &SlateSpec,
    seed: u64,
) -> SeedEval {
    let generator = ProgramGenerator::new(spec.generator.clone());
    let tc = generator.generate(seed);
    if spec.speculation_filter {
        // The `*+Assist` executor modes arm an assist page even when the
        // sandbox does not declare one.
        let assists = spec.executor.mode.assists || tc.sandbox().assist_page.is_some();
        if !crate::staticanalysis::leak_possible(&tc, assists) {
            return SeedEval::Filtered;
        }
    }
    let input_gen = InputGenerator::new(spec.generator.input_entropy_bits);
    let inputs = input_gen.generate(&tc, input_stream_seed(seed), spec.generator.inputs_per_test_case);
    // Derive the synthetic-noise stream from the test-case seed so that
    // measurements do not depend on which worker (or in which order) the
    // test case runs.
    let mut exec_cfg = spec.executor;
    exec_cfg.noise = exec_cfg.noise.for_test_case_seed(seed);
    let mut executor = Executor::new(cpu_template.clone(), exec_cfg);
    let analyzer = Analyzer::new();
    match evaluate_slate(&mut executor, &analyzer, spec.checks, &spec.contracts, &tc, &inputs) {
        Ok(outcomes) => SeedEval::Measured(Box::new(SlateUnit { seed, tc, inputs, outcomes })),
        // Malformed test case; skipped (never happens for generated code).
        Err(_) => SeedEval::Faulted,
    }
}

/// A completed testing round, reported through [`ProgressObserver`].
#[derive(Debug, Clone)]
pub struct RoundEvent {
    /// Table 2 target id the round belongs to, when known.
    pub target_id: Option<u8>,
    /// 1-based round number within the campaign (or matrix cell group).
    pub round: usize,
    /// Test cases evaluated so far in this campaign / cell group.
    pub test_cases: usize,
    /// Test cases discarded by the static speculation pre-filter so far in
    /// this campaign / cell group (0 when the filter is off).
    pub filtered: usize,
    /// Generator escalations of this campaign / cell group so far (§5.6).
    /// Matrix cell groups run a fixed generator configuration unless
    /// [`CampaignMatrix::with_escalation`](crate::CampaignMatrix::with_escalation)
    /// is on, in which case this is the group's true per-target count.
    pub escalations: usize,
}

/// A finished matrix cell (or campaign), reported through
/// [`ProgressObserver`].
#[derive(Debug, Clone)]
pub struct CellEvent {
    /// Table 2 target id of the cell.
    pub target_id: u8,
    /// The contract the cell tested against.
    pub contract: Contract,
    /// Whether a confirmed violation was found.
    pub found: bool,
    /// Classification of the violation, if one was found.
    pub vulnerability: Option<VulnClass>,
    /// Test cases evaluated until detection (or until the budget ran out).
    pub test_cases: usize,
    /// Wall-clock time since the campaign / matrix started.
    pub elapsed: Duration,
}

/// Live progress hook for long-running campaigns and matrix runs.
///
/// All methods have empty default implementations; implement only the
/// events of interest.  Events are delivered from the driving thread (never
/// from round workers), in deterministic campaign order.
pub trait ProgressObserver {
    /// A testing round completed.
    fn round_completed(&mut self, event: &RoundEvent) {
        let _ = event;
    }
    /// A matrix cell finished (found a violation or exhausted its budget).
    fn cell_finished(&mut self, event: &CellEvent) {
        let _ = event;
    }
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl ProgressObserver for NoopObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use crate::targets::Target;
    use rvz_executor::NoiseConfig;

    fn spec_for(target: &Target, contracts: Vec<Contract>) -> SlateSpec {
        SlateSpec {
            generator: rvz_gen::GeneratorConfig::for_subset(target.isa)
                .with_basic_blocks(4)
                .with_instructions(14),
            executor: ExecutorConfig::fast(target.mode).with_repetitions(2),
            checks: SlateChecks::all(),
            contracts,
            speculation_filter: false,
        }
    }

    #[test]
    fn slate_outcomes_match_independent_single_contract_evaluations() {
        // The htrace-sharing slate must be invisible: per-contract outcomes
        // equal a fresh single-contract evaluation of the same seed.
        let target = Target::target5();
        let contracts = Contract::table3_contracts();
        let spec = spec_for(&target, contracts.clone());
        let cpu = target.cpu();
        for seed in [3u64, 19, 57] {
            let shared = evaluate_seed(&cpu, &spec, seed).into_unit().unwrap();
            for (k, contract) in contracts.iter().enumerate() {
                let solo_spec = spec_for(&target, vec![contract.clone()]);
                let solo = evaluate_seed(&cpu, &solo_spec, seed).into_unit().unwrap();
                assert_eq!(shared.outcomes[k], solo.outcomes[0], "seed {seed}, {}", contract.name());
            }
        }
    }

    #[test]
    fn slate_outcomes_match_under_synthetic_noise() {
        // The noise checkpoint makes the equality hold even when the swap
        // check draws from the noise stream: every contract's filter pass
        // starts at the post-baseline stream position.
        let target = Target::target5();
        let contracts = Contract::table3_contracts();
        let mut spec = spec_for(&target, contracts.clone());
        spec.executor = spec
            .executor
            .with_repetitions(5)
            .with_noise(NoiseConfig { one_off_probability: 0.1, smi_probability: 0.05, seed: 23 });
        let cpu = target.cpu();
        for seed in [5u64, 42] {
            let shared = evaluate_seed(&cpu, &spec, seed).into_unit().unwrap();
            for (k, contract) in contracts.iter().enumerate() {
                let mut solo_spec = spec.clone();
                solo_spec.contracts = vec![contract.clone()];
                let solo = evaluate_seed(&cpu, &solo_spec, seed).into_unit().unwrap();
                assert_eq!(shared.outcomes[k], solo.outcomes[0], "seed {seed}, {}", contract.name());
            }
        }
    }

    #[test]
    fn slate_confirms_v1_against_ct_seq_but_not_ct_cond() {
        // Table 3, Target 5 row, on a handwritten gadget: one measurement,
        // four contract verdicts.
        let target = Target::target5();
        let contracts = Contract::table3_contracts();
        let spec = spec_for(&target, contracts.clone());
        let mut executor = Executor::new(target.cpu(), spec.executor);
        let analyzer = Analyzer::new();
        let tc = gadgets::spectre_v1();
        let inputs = InputGenerator::new(2).generate(&tc, 11, 24);
        let outcomes =
            evaluate_slate(&mut executor, &analyzer, spec.checks, &contracts, &tc, &inputs).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes[0].confirmed_violation.is_some(), "CT-SEQ violated");
        assert!(outcomes[1].confirmed_violation.is_some(), "CT-BPAS violated");
        assert!(outcomes[2].confirmed_violation.is_none(), "CT-COND permits V1 leakage");
        assert!(outcomes[3].confirmed_violation.is_none(), "CT-COND-BPAS permits V1 leakage");
    }

    #[test]
    fn evaluate_seed_is_a_pure_function_of_its_arguments() {
        let target = Target::target1();
        let spec = spec_for(&target, vec![Contract::ct_seq()]);
        let a = evaluate_seed(&target.cpu(), &spec, 7).into_unit().unwrap();
        let b = evaluate_seed(&target.cpu(), &spec, 7).into_unit().unwrap();
        assert_eq!(a, b);
    }
}
