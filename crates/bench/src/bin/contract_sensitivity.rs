//! Regenerates §6.6 / Figure 6: contract sensitivity.
//!
//! CT-SEQ forbids any speculative leakage, so it is violated by both the
//! gadget that leaks a *non-speculatively* loaded value (Figure 6a) and the
//! classic V1 gadget that leaks a *speculatively* loaded value (Figure 6b).
//! ARCH-SEQ permits exposure of non-speculative data, so only the classic V1
//! gadget violates it — which is exactly the property needed to test
//! STT-like defences.
//!
//! Both contracts are evaluated as one *slate* per gadget
//! ([`inputs_to_violation_slate`]): each growing input batch is measured
//! once and the hardware traces are checked against CT-SEQ and ARCH-SEQ
//! together, halving the measurement cost relative to per-contract runs
//! while reporting identical input counts.

use revizor::detection::first_violations_over_seeds;
use revizor::gadgets;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, row};
use rvz_model::Contract;

fn main() {
    let max_inputs = budget_from_args(150);
    let target = Target::target5();
    println!("Contract sensitivity (Figure 6 / §6.6), target: {target}");
    println!();

    let gadgets: Vec<(&str, rvz_isa::TestCase)> = vec![
        ("Fig 6a (non-speculative load, speculative use)", gadgets::arch_seq_insensitive()),
        ("Fig 6b (classic V1: speculative load + use)", gadgets::arch_seq_sensitive()),
    ];
    let contracts = vec![Contract::ct_seq(), Contract::arch_seq()];

    let widths = [48, 18, 18];
    println!(
        "{}",
        row(&["Gadget".into(), "CT-SEQ".into(), "ARCH-SEQ".into()], &widths)
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    for (name, gadget) in &gadgets {
        // Try a few seeds; report the first detection per contract.  The
        // whole contract slate shares each seed's measurements.
        let first = first_violations_over_seeds(
            &target,
            &contracts,
            gadget,
            (0..5u64).map(|s| s * 31 + 7),
            max_inputs,
        );
        let mut line = vec![name.to_string()];
        line.extend(first.iter().map(|r| match r {
            Some(n) => format!("violated ({n} inputs)"),
            None => "no violation".to_string(),
        }));
        println!("{}", row(&line, &widths));
    }

    println!();
    println!(
        "Expected shape (paper): both gadgets violate CT-SEQ; only Fig 6b violates ARCH-SEQ."
    );
}
