//! The indexed result store: a queryable, on-disk index of every violation
//! a finished campaign job found.
//!
//! A long-lived campaign server accumulates job results as opaque payloads
//! in the spool; answering "did we ever see this gadget before?" used to
//! mean re-parsing every result. This crate keeps a separate append-only
//! index (`index.rvz`, a chain of [`binfmt`] `KIND_STORE_ENTRY` frames)
//! with one small entry per violation cell, keyed by **target**,
//! **contract**, **gadget class** and **instruction mnemonics**, so
//! `revizor-query` can answer "all V4 hits on target 3" or "new gadget
//! classes since job X" from the index alone.
//!
//! Entries are deduplicated by *minimized-gadget equivalence*: the
//! [`fingerprint`](fingerprint_violation) hashes the gadget's static
//! signature ([`GadgetSignature::canonical`]) together with its program
//! blocks after renaming registers in first-appearance order, so the same
//! gadget found under different register allocations (e.g. by two jobs
//! with different seeds) collapses into one entry with an occurrence
//! count. Sandbox layout and generator origin metadata are deliberately
//! excluded from the hash — they describe the harness, not the gadget.
//!
//! Like the spool, the index tolerates a torn tail: a crash mid-append
//! loses at most the entry in flight, never the index.
//!
//! [`GadgetSignature::canonical`]: revizor::staticanalysis::GadgetSignature::canonical

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use revizor::fuzzer::ViolationReport;
use revizor::orchestrator::{CellReport, MatrixReport};
use rvz_bench::binfmt::{self, FrameBuilder, KIND_STORE_ENTRY, TAG_META};
use rvz_bench::json::Json;
use rvz_bench::report::test_case_to_json;
use rvz_isa::{Reg, Width};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Name of the index file inside the store directory.
pub const INDEX_FILE: &str = "index.rvz";

/// One indexed violation: the query key fields plus the dedup fingerprint.
///
/// Entries carry no result payload — the full counterexample stays in the
/// job result; the index holds just enough to group, filter and count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// The job whose result produced this entry.
    pub job: String,
    /// Table 2 target id of the violating cell.
    pub target: u8,
    /// Contract name of the violating cell (e.g. `CT-SEQ`).
    pub contract: String,
    /// Vulnerability class label (e.g. `Spectre-V1`).
    pub vulnerability: String,
    /// Gadget class label from the static classifier (e.g. `V1`, `V4`);
    /// `unclassified` when the classifier produced no signature.
    pub class: String,
    /// Canonical gadget signature (e.g. `cond->load[dep]`).
    pub signature: String,
    /// Sorted, deduplicated lowercase mnemonics of the violating test case
    /// (terminators contribute `jmp` / `jcc`).
    pub mnemonics: Vec<String>,
    /// Minimized-gadget equivalence fingerprint (see
    /// [`fingerprint_violation`]).
    pub fingerprint: u64,
    /// Observations this entry stands for (1 per append; >1 only after
    /// merging).
    pub count: u64,
}

/// A group of [`StoreEntry`]s with the same fingerprint, in first-seen
/// order.
#[derive(Debug, Clone)]
pub struct MergedEntry {
    /// The first-seen entry of the group (key fields are identical across
    /// the group by construction).
    pub entry: StoreEntry,
    /// Total observations across the group.
    pub count: u64,
    /// Jobs that observed the gadget, in first-seen order, deduplicated.
    pub jobs: Vec<String>,
}

/// The on-disk store: a directory holding the append-only [`INDEX_FILE`].
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Open (creating if needed) a store directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// Path of the index file.
    pub fn index_path(&self) -> PathBuf {
        self.dir.join(INDEX_FILE)
    }

    /// Append one entry to the index.
    ///
    /// # Errors
    /// Propagates I/O failures; the index is untouched or grows by exactly
    /// one frame.
    pub fn append(&self, entry: &StoreEntry) -> io::Result<()> {
        let frame = entry_frame(entry);
        let mut file =
            fs::OpenOptions::new().create(true).append(true).open(self.index_path())?;
        file.write_all(&frame)
    }

    /// Index every violation cell of a finished job's report, returning how
    /// many entries were appended.
    ///
    /// # Errors
    /// Propagates I/O failures from [`Store::append`].
    pub fn index_report(&self, job: &str, report: &MatrixReport) -> io::Result<usize> {
        let mut appended = 0;
        for cell in &report.cells {
            if let Some(entry) = entry_for(job, cell) {
                self.append(&entry)?;
                appended += 1;
            }
        }
        Ok(appended)
    }

    /// All entries in append order. A missing index is an empty store; a
    /// torn tail (crash mid-append) silently ends the scan at the last
    /// complete entry.
    ///
    /// # Errors
    /// Returns a message when the index cannot be read or its first frame
    /// is corrupt (a torn *tail* after at least one good entry is not an
    /// error).
    pub fn entries(&self) -> Result<Vec<StoreEntry>, String> {
        let path = self.index_path();
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        entries_from_bytes(&data, &path)
    }

    /// [`Store::entries`] merged by fingerprint: one [`MergedEntry`] per
    /// distinct gadget, in first-seen order, with occurrence counts.
    ///
    /// # Errors
    /// Propagates [`Store::entries`] failures.
    pub fn merged(&self) -> Result<Vec<MergedEntry>, String> {
        Ok(merge(&self.entries()?))
    }

    /// Gadgets first observed strictly *after* the given job's last entry —
    /// the "show me new gadget classes since job X" query. Fingerprints
    /// already seen at or before that point are excluded even if later
    /// jobs re-observe them.
    ///
    /// # Errors
    /// Returns a message for an unreadable index or a job with no entries
    /// (a job that found nothing is indistinguishable from an unknown one —
    /// only violations are indexed).
    pub fn new_since(&self, job: &str) -> Result<Vec<MergedEntry>, String> {
        let entries = self.entries()?;
        let cutoff = entries
            .iter()
            .rposition(|e| e.job == job)
            .ok_or_else(|| format!("job `{job}` has no entries in the store"))?;
        let seen: HashSet<u64> = entries[..=cutoff].iter().map(|e| e.fingerprint).collect();
        Ok(merge(&entries[cutoff + 1..])
            .into_iter()
            .filter(|m| !seen.contains(&m.entry.fingerprint))
            .collect())
    }
}

/// Build the index entry for one matrix cell; `None` for cells without a
/// violation (only violations are indexed).
pub fn entry_for(job: &str, cell: &CellReport) -> Option<StoreEntry> {
    let v = cell.violation.as_ref()?;
    let tc = test_case_to_json(&v.test_case);
    Some(StoreEntry {
        job: job.to_string(),
        target: cell.target.id,
        contract: cell.contract.name().to_string(),
        vulnerability: v.vulnerability.to_string(),
        class: v.gadget.map(|g| g.label().to_string()).unwrap_or_else(unclassified),
        signature: v.gadget.map(|g| g.canonical()).unwrap_or_else(unclassified),
        mnemonics: mnemonics_of(&tc),
        fingerprint: fingerprint_violation(v),
        count: 1,
    })
}

fn unclassified() -> String {
    "unclassified".to_string()
}

/// The minimized-gadget equivalence fingerprint: FNV-1a over the canonical
/// gadget signature and the register-canonicalized program blocks (see
/// [`canonical_gadget_json`]). Two violations with the same program shape
/// and signature hash identically regardless of register allocation, job,
/// seed or sandbox layout.
pub fn fingerprint_violation(v: &ViolationReport) -> u64 {
    let signature = v.gadget.map(|g| g.canonical()).unwrap_or_else(unclassified);
    let canon = canonical_gadget_json(&test_case_to_json(&v.test_case)).render();
    let mut hash = fnv1a(FNV_OFFSET, signature.as_bytes());
    hash = fnv1a(hash, &[0]);
    fnv1a(hash, canon.as_bytes())
}

/// The program shape of a serialized test case ([`test_case_to_json`]
/// form): its `blocks` array with every register name replaced by `g0`,
/// `g1`, … in first-appearance order. Origin and sandbox metadata are
/// dropped — they describe the harness, not the gadget.
pub fn canonical_gadget_json(tc_json: &Json) -> Json {
    let blocks = tc_json.get("blocks").cloned().unwrap_or(Json::Null);
    let mut names = Vec::new();
    canonical_value(&blocks, &mut names)
}

fn canonical_value(doc: &Json, names: &mut Vec<String>) -> Json {
    match doc {
        Json::Str(s) if is_reg_name(s) => {
            let idx = names.iter().position(|n| n == s).unwrap_or_else(|| {
                names.push(s.clone());
                names.len() - 1
            });
            Json::Str(format!("g{idx}"))
        }
        Json::Arr(items) => Json::Arr(items.iter().map(|i| canonical_value(i, names)).collect()),
        Json::Obj(fields) => Json::Obj(
            fields.iter().map(|(k, v)| (k.clone(), canonical_value(v, names))).collect(),
        ),
        other => other.clone(),
    }
}

fn is_reg_name(s: &str) -> bool {
    // The codec always writes the 64-bit name; condition suffixes and
    // mnemonics never collide with it.
    Reg::ALL.iter().any(|r| r.name(Width::Qword) == s)
}

/// Sorted, deduplicated lowercase mnemonics of a serialized test case:
/// every instruction's specific mnemonic (`add`, `shl`, `not`, `mov`, …)
/// plus `jmp` / `jcc` for branching terminators.
pub fn mnemonics_of(tc_json: &Json) -> Vec<String> {
    let mut out = BTreeSet::new();
    let Some(blocks) = tc_json.get("blocks").and_then(Json::as_array) else {
        return Vec::new();
    };
    for block in blocks {
        for instr in block.get("instrs").and_then(Json::as_array).unwrap_or(&[]) {
            let Some(op) = instr.get("op").and_then(Json::as_str) else { continue };
            let mnemonic = match op {
                // These carry their specific mnemonic in a same-named field.
                "alu" | "shift" | "unary" => instr.get(op).and_then(Json::as_str).unwrap_or(op),
                _ => op,
            };
            out.insert(mnemonic.to_ascii_lowercase());
        }
        match block.get("terminator").and_then(|t| t.get("kind")).and_then(Json::as_str) {
            Some("jmp") => {
                out.insert("jmp".to_string());
            }
            Some("condjmp") => {
                out.insert("jcc".to_string());
            }
            _ => {}
        }
    }
    out.into_iter().collect()
}

/// Merge entries by fingerprint: one [`MergedEntry`] per distinct gadget,
/// in first-seen order, counts summed and observing jobs collected.
pub fn merge(entries: &[StoreEntry]) -> Vec<MergedEntry> {
    let mut order: Vec<MergedEntry> = Vec::new();
    let mut by_fingerprint: HashMap<u64, usize> = HashMap::new();
    for e in entries {
        match by_fingerprint.get(&e.fingerprint) {
            Some(&i) => {
                let m = &mut order[i];
                m.count += e.count;
                if !m.jobs.contains(&e.job) {
                    m.jobs.push(e.job.clone());
                }
            }
            None => {
                by_fingerprint.insert(e.fingerprint, order.len());
                order.push(MergedEntry {
                    entry: e.clone(),
                    count: e.count,
                    jobs: vec![e.job.clone()],
                });
            }
        }
    }
    order
}

/// Serialize an entry as one `KIND_STORE_ENTRY` frame.
pub fn entry_frame(entry: &StoreEntry) -> Vec<u8> {
    let meta = Json::obj()
        .field("version", 1u64)
        .field("job", entry.job.as_str())
        .field("target", entry.target)
        .field("contract", entry.contract.as_str())
        .field("vulnerability", entry.vulnerability.as_str())
        .field("class", entry.class.as_str())
        .field("signature", entry.signature.as_str())
        .field(
            "mnemonics",
            Json::Arr(entry.mnemonics.iter().map(|m| Json::Str(m.clone())).collect()),
        )
        .field("fingerprint", entry.fingerprint)
        .field("count", entry.count);
    FrameBuilder::new(KIND_STORE_ENTRY).json_section(TAG_META, &meta).build()
}

/// Decode one entry from the bytes of a `KIND_STORE_ENTRY` frame.
///
/// # Errors
/// Returns a message for wrong kinds, missing sections or malformed meta.
pub fn entry_from_bytes(bytes: &[u8]) -> Result<StoreEntry, String> {
    let frame = binfmt::parse_frame(bytes)?;
    if frame.kind != KIND_STORE_ENTRY {
        return Err(format!("expected a store-entry frame, got kind {}", frame.kind));
    }
    let meta = frame.json_section(TAG_META, "store entry meta")?;
    let str_of = |key: &str| -> Result<String, String> {
        meta.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("store entry meta lacks `{key}`"))
    };
    let u64_of = |key: &str| -> Result<u64, String> {
        meta.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("store entry meta lacks `{key}`"))
    };
    let mnemonics = meta
        .get("mnemonics")
        .and_then(Json::as_array)
        .ok_or("store entry meta lacks `mnemonics`")?
        .iter()
        .map(|m| m.as_str().map(str::to_string).ok_or("non-string mnemonic".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StoreEntry {
        job: str_of("job")?,
        target: u8::try_from(u64_of("target")?).map_err(|_| "target out of range".to_string())?,
        contract: str_of("contract")?,
        vulnerability: str_of("vulnerability")?,
        class: str_of("class")?,
        signature: str_of("signature")?,
        mnemonics,
        fingerprint: u64_of("fingerprint")?,
        count: u64_of("count")?,
    })
}

fn entries_from_bytes(data: &[u8], path: &Path) -> Result<Vec<StoreEntry>, String> {
    let mut out = Vec::new();
    let mut offset = 0;
    while offset < data.len() {
        let rest = &data[offset..];
        let total = match binfmt::frame_len(rest) {
            Ok(Some(total)) if total <= rest.len() => total,
            // An incomplete header or body is a torn tail from a
            // mid-append kill: everything before it is intact.
            Ok(_) => break,
            Err(e) => {
                if out.is_empty() {
                    return Err(format!("{}: {e}", path.display()));
                }
                break;
            }
        };
        match entry_from_bytes(&rest[..total]) {
            Ok(entry) => out.push(entry),
            Err(e) => {
                if out.is_empty() {
                    return Err(format!("{}: {e}", path.display()));
                }
                break;
            }
        }
        offset += total;
    }
    Ok(out)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use revizor::orchestrator::CampaignMatrix;
    use revizor::targets::Target;
    use rvz_bench::json::parse;
    use rvz_model::Contract;

    fn v1_report() -> MatrixReport {
        CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq())
            .run()
    }

    fn temp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("rvz-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn two_jobs_hitting_the_same_gadget_merge_into_one_entry_with_count_2() {
        let (dir, store) = temp_store("dedup");
        let report = v1_report();
        assert_eq!(store.index_report("job-a", &report).unwrap(), 1);
        assert_eq!(store.index_report("job-b", &report).unwrap(), 1);
        let merged = store.merged().unwrap();
        assert_eq!(merged.len(), 1, "identical gadgets dedup into one entry");
        assert_eq!(merged[0].count, 2);
        assert_eq!(merged[0].jobs, vec!["job-a".to_string(), "job-b".to_string()]);
        assert_eq!(merged[0].entry.vulnerability, "V1");
        assert_eq!(merged[0].entry.target, 5);
        assert_eq!(merged[0].entry.contract, "CT-SEQ");
        assert!(merged[0].entry.mnemonics.contains(&"jcc".to_string()), "V1 has a branch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_renaming_does_not_change_the_canonical_form() {
        // The same program shape under two register allocations: RAX/RBX
        // vs RCX/RDX, in the serialized (test_case_to_json) form.
        let shape = |a: &str, b: &str| {
            format!(
                r#"{{"origin":"x","sandbox":null,"blocks":[{{"id":0,"label":null,
                    "instrs":[{{"op":"mov","dest":{{"kind":"reg","reg":"{a}","width":"qword"}},
                                "src":{{"kind":"reg","reg":"{b}","width":"qword"}}}}],
                    "terminator":{{"kind":"exit"}}}}]}}"#
            )
        };
        let one = canonical_gadget_json(&parse(&shape("RAX", "RBX")).unwrap());
        let other = canonical_gadget_json(&parse(&shape("RCX", "RDX")).unwrap());
        assert_eq!(one.render(), other.render());
        // But a genuinely different shape (src == dest) stays distinct.
        let same_reg = canonical_gadget_json(&parse(&shape("RAX", "RAX")).unwrap());
        assert_ne!(one.render(), same_reg.render());
    }

    #[test]
    fn entries_survive_a_torn_tail() {
        let (dir, store) = temp_store("torn");
        let report = v1_report();
        store.index_report("job-a", &report).unwrap();
        // A crash mid-append leaves a partial frame at the tail.
        let entry = entry_for("job-b", &report.cells[0]).unwrap();
        let frame = entry_frame(&entry);
        let mut file =
            fs::OpenOptions::new().append(true).open(store.index_path()).unwrap();
        file.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(file);
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].job, "job-a");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_since_reports_only_fingerprints_unseen_at_the_cutoff() {
        let (dir, store) = temp_store("since");
        let report = v1_report();
        let base = entry_for("job-a", &report.cells[0]).unwrap();
        store.append(&base).unwrap();
        // job-b re-observes the same gadget AND finds a new one.
        store.append(&StoreEntry { job: "job-b".to_string(), ..base.clone() }).unwrap();
        let novel = StoreEntry {
            job: "job-b".to_string(),
            class: "V4".to_string(),
            signature: "store-bypass->load".to_string(),
            fingerprint: base.fingerprint ^ 1,
            ..base.clone()
        };
        store.append(&novel).unwrap();
        let since_a = store.new_since("job-a").unwrap();
        assert_eq!(since_a.len(), 1, "the re-observation is not new");
        assert_eq!(since_a[0].entry.class, "V4");
        assert!(store.new_since("job-b").unwrap().is_empty());
        assert!(store.new_since("job-zz").is_err(), "unknown job is an error");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_round_trip_through_the_frame_codec() {
        let report = v1_report();
        let entry = entry_for("job-x", &report.cells[0]).unwrap();
        let decoded = entry_from_bytes(&entry_frame(&entry)).unwrap();
        assert_eq!(decoded, entry);
    }
}
