//! Instructions of the ISA.

use crate::block::BlockId;
use crate::operand::{MemOperand, Operand};
use crate::reg::{Reg, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary ALU operations (`dest = dest OP src`, flags written).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Adc,
    Sub,
    Sbb,
    And,
    Or,
    Xor,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 7] =
        [AluOp::Add, AluOp::Adc, AluOp::Sub, AluOp::Sbb, AluOp::And, AluOp::Or, AluOp::Xor];

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "ADD",
            AluOp::Adc => "ADC",
            AluOp::Sub => "SUB",
            AluOp::Sbb => "SBB",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
        }
    }

    /// Whether the operation also reads the carry flag.
    pub fn reads_carry(self) -> bool {
        matches!(self, AluOp::Adc | AluOp::Sbb)
    }
}

/// Unary read-modify-write operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Neg,
    Inc,
    Dec,
}

impl UnaryOp {
    /// All unary operations.
    pub const ALL: [UnaryOp; 4] = [UnaryOp::Not, UnaryOp::Neg, UnaryOp::Inc, UnaryOp::Dec];

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Not => "NOT",
            UnaryOp::Neg => "NEG",
            UnaryOp::Inc => "INC",
            UnaryOp::Dec => "DEC",
        }
    }

    /// NOT does not modify flags; the others do.
    pub fn writes_flags(self) -> bool {
        !matches!(self, UnaryOp::Not)
    }
}

/// Shift operations (`dest = dest OP amount`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
}

impl ShiftOp {
    /// All shift operations.
    pub const ALL: [ShiftOp; 5] =
        [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar, ShiftOp::Rol, ShiftOp::Ror];

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "SHL",
            ShiftOp::Shr => "SHR",
            ShiftOp::Sar => "SAR",
            ShiftOp::Rol => "ROL",
            ShiftOp::Ror => "ROR",
        }
    }
}

/// x86-style condition codes for `Jcc`, `CMOVcc` and `SETcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Cond {
    /// Overflow.
    O,
    /// Not overflow.
    No,
    /// Below (carry set).
    B,
    /// Not below (carry clear).
    Nb,
    /// Equal / zero.
    E,
    /// Not equal / not zero.
    Ne,
    /// Below or equal.
    Be,
    /// Not below or equal (above).
    Nbe,
    /// Sign.
    S,
    /// Not sign.
    Ns,
    /// Parity.
    P,
    /// Not parity.
    Np,
    /// Less (signed).
    L,
    /// Not less (signed greater or equal).
    Nl,
    /// Less or equal (signed).
    Le,
    /// Not less or equal (signed greater).
    Nle,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Nb,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::Nbe,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Nl,
        Cond::Le,
        Cond::Nle,
    ];

    /// Condition-code suffix, e.g. `NS` in `JNS`.
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::O => "O",
            Cond::No => "NO",
            Cond::B => "B",
            Cond::Nb => "NB",
            Cond::E => "E",
            Cond::Ne => "NE",
            Cond::Be => "BE",
            Cond::Nbe => "NBE",
            Cond::S => "S",
            Cond::Ns => "NS",
            Cond::P => "P",
            Cond::Np => "NP",
            Cond::L => "L",
            Cond::Nl => "NL",
            Cond::Le => "LE",
            Cond::Nle => "NLE",
        }
    }

    /// The logically inverted condition (used by the contract execution
    /// clause, which executes the *inverted* branch direction, Table 1).
    pub fn inverted(self) -> Cond {
        match self {
            Cond::O => Cond::No,
            Cond::No => Cond::O,
            Cond::B => Cond::Nb,
            Cond::Nb => Cond::B,
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::Be => Cond::Nbe,
            Cond::Nbe => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
            Cond::P => Cond::Np,
            Cond::Np => Cond::P,
            Cond::L => Cond::Nl,
            Cond::Nl => Cond::L,
            Cond::Le => Cond::Nle,
            Cond::Nle => Cond::Le,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A straight-line (non-terminator) instruction.
///
/// Control flow is expressed separately by [`Terminator`](crate::Terminator)s
/// at the end of each basic block, which keeps generated programs loop-free
/// (the paper generates DAGs of basic blocks, §5.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `dest = dest op src`; writes flags.  `lock` mirrors the x86 `LOCK`
    /// prefix on memory destinations (semantically a no-op for the
    /// single-core emulator but kept for display fidelity with Figure 3).
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (register or memory).
        dest: Operand,
        /// Source (register, immediate or memory).
        src: Operand,
        /// LOCK prefix.
        lock: bool,
    },
    /// `dest = src`.
    Mov {
        /// Destination (register or memory).
        dest: Operand,
        /// Source (register, immediate or memory).
        src: Operand,
    },
    /// `if cond { dest = src }`; reads flags.
    Cmov {
        /// Condition code.
        cond: Cond,
        /// Destination register.
        dest: Reg,
        /// Source (register or memory).
        src: Operand,
        /// Access width.
        width: Width,
    },
    /// `dest = cond ? 1 : 0` (byte); reads flags.
    Setcc {
        /// Condition code.
        cond: Cond,
        /// Destination register (byte view written).
        dest: Reg,
    },
    /// Compare: computes `a - b` and sets flags, discarding the result.
    Cmp {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Test: computes `a & b` and sets flags, discarding the result.
    Test {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dest = dest shift_op amount`; writes flags.
    Shift {
        /// Operation.
        op: ShiftOp,
        /// Destination (register or memory).
        dest: Operand,
        /// Shift amount (immediate or CL).
        amount: Operand,
    },
    /// Unary read-modify-write.
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Destination (register or memory).
        dest: Operand,
    },
    /// Unsigned division: `RAX = RDX:RAX / src`, `RDX = RDX:RAX % src`.
    ///
    /// This is the paper's only variable-latency instruction class (`VAR`);
    /// its latency depends on the operand values, which is what the novel
    /// V1-var / V4-var leaks expose (§6.3).
    Div {
        /// Divisor (register or memory).
        src: Operand,
    },
    /// Signed multiply: `dest = dest * src` (two-operand form); writes flags.
    Imul {
        /// Destination register.
        dest: Reg,
        /// Source (register, immediate or memory).
        src: Operand,
    },
    /// Load effective address: `dest = &mem` (no memory access, no flags).
    Lea {
        /// Destination register.
        dest: Reg,
        /// Address expression.
        addr: MemOperand,
    },
    /// Byte swap of a register (no flags).
    Bswap {
        /// Register to byte-swap.
        dest: Reg,
    },
    /// Exchange register with operand (no flags).
    Xchg {
        /// First operand (register).
        dest: Reg,
        /// Second operand (register or memory).
        src: Operand,
    },
    /// Load fence: serializes speculation (used by the postprocessor when
    /// locating the leaking region, §5.7 and Figure 4).
    Lfence,
    /// Full memory fence; also serializes speculation.
    Mfence,
    /// No operation.
    Nop,
}

impl Instr {
    /// Registers read by the instruction (including address registers and
    /// implicit sources such as `RAX`/`RDX` for `DIV`).
    pub fn reads_regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        match self {
            Instr::Alu { dest, src, .. } => {
                out.extend(src.source_regs());
                out.extend(dest.dest_addr_regs());
                if let Some(r) = dest.as_reg() {
                    out.push(r);
                }
            }
            Instr::Mov { dest, src } => {
                out.extend(src.source_regs());
                out.extend(dest.dest_addr_regs());
            }
            Instr::Cmov { dest, src, .. } => {
                out.push(*dest);
                out.extend(src.source_regs());
            }
            Instr::Setcc { .. } => {}
            Instr::Cmp { a, b } | Instr::Test { a, b } => {
                out.extend(a.source_regs());
                out.extend(b.source_regs());
            }
            Instr::Shift { dest, amount, .. } => {
                out.extend(amount.source_regs());
                out.extend(dest.dest_addr_regs());
                if let Some(r) = dest.as_reg() {
                    out.push(r);
                }
            }
            Instr::Unary { dest, .. } => {
                out.extend(dest.dest_addr_regs());
                if let Some(r) = dest.as_reg() {
                    out.push(r);
                }
            }
            Instr::Div { src } => {
                out.push(Reg::Rax);
                out.push(Reg::Rdx);
                out.extend(src.source_regs());
            }
            Instr::Imul { dest, src } => {
                out.push(*dest);
                out.extend(src.source_regs());
            }
            Instr::Lea { addr, .. } => out.extend(addr.address_regs()),
            Instr::Bswap { dest } => out.push(*dest),
            Instr::Xchg { dest, src } => {
                out.push(*dest);
                out.extend(src.source_regs());
                out.extend(src.dest_addr_regs());
            }
            Instr::Lfence | Instr::Mfence | Instr::Nop => {}
        }
        out
    }

    /// Registers written by the instruction.
    pub fn writes_regs(&self) -> Vec<Reg> {
        match self {
            Instr::Alu { dest, .. }
            | Instr::Mov { dest, .. }
            | Instr::Shift { dest, .. }
            | Instr::Unary { dest, .. } => dest.as_reg().into_iter().collect(),
            Instr::Cmov { dest, .. } | Instr::Setcc { dest, .. } => vec![*dest],
            Instr::Cmp { .. } | Instr::Test { .. } => vec![],
            Instr::Div { .. } => vec![Reg::Rax, Reg::Rdx],
            Instr::Imul { dest, .. } | Instr::Lea { dest, .. } | Instr::Bswap { dest } => {
                vec![*dest]
            }
            Instr::Xchg { dest, src } => {
                let mut v = vec![*dest];
                if let Some(r) = src.as_reg() {
                    v.push(r);
                }
                v
            }
            Instr::Lfence | Instr::Mfence | Instr::Nop => vec![],
        }
    }

    /// Does the instruction read from memory?
    pub fn reads_mem(&self) -> bool {
        match self {
            Instr::Alu { dest, src, .. } => src.is_mem() || dest.is_mem(),
            Instr::Mov { src, .. } => src.is_mem(),
            Instr::Cmov { src, .. } | Instr::Imul { src, .. } | Instr::Div { src } => src.is_mem(),
            Instr::Cmp { a, b } | Instr::Test { a, b } => a.is_mem() || b.is_mem(),
            Instr::Shift { dest, .. } | Instr::Unary { dest, .. } => dest.is_mem(),
            Instr::Xchg { src, .. } => src.is_mem(),
            _ => false,
        }
    }

    /// Does the instruction write to memory?
    pub fn writes_mem(&self) -> bool {
        match self {
            Instr::Alu { dest, .. }
            | Instr::Mov { dest, .. }
            | Instr::Shift { dest, .. }
            | Instr::Unary { dest, .. } => dest.is_mem(),
            Instr::Xchg { src, .. } => src.is_mem(),
            _ => false,
        }
    }

    /// Does the instruction access memory at all?
    pub fn accesses_mem(&self) -> bool {
        self.reads_mem() || self.writes_mem()
    }

    /// Does the instruction write the status flags?
    pub fn writes_flags(&self) -> bool {
        match self {
            Instr::Alu { .. }
            | Instr::Cmp { .. }
            | Instr::Test { .. }
            | Instr::Shift { .. }
            | Instr::Div { .. }
            | Instr::Imul { .. } => true,
            Instr::Unary { op, .. } => op.writes_flags(),
            _ => false,
        }
    }

    /// Does the instruction read the status flags?
    pub fn reads_flags(&self) -> bool {
        match self {
            Instr::Cmov { .. } | Instr::Setcc { .. } => true,
            Instr::Alu { op, .. } => op.reads_carry(),
            _ => false,
        }
    }

    /// Is this a speculation barrier (`LFENCE`/`MFENCE`)?
    pub fn is_fence(&self) -> bool {
        matches!(self, Instr::Lfence | Instr::Mfence)
    }

    /// Is this a variable-latency instruction (the `VAR` class)?
    pub fn is_variable_latency(&self) -> bool {
        matches!(self, Instr::Div { .. })
    }

    /// Memory operands referenced by this instruction together with their
    /// access kinds `(operand, width, is_write)`.
    pub fn mem_operands(&self) -> Vec<(MemOperand, Width, bool)> {
        let mut out = Vec::new();
        let mut push = |op: &Operand, write: bool| {
            if let Some((m, w)) = op.as_mem() {
                out.push((m, w, write));
            }
        };
        match self {
            Instr::Alu { dest, src, .. } => {
                push(src, false);
                if dest.is_mem() {
                    push(dest, true);
                }
            }
            Instr::Mov { dest, src } => {
                push(src, false);
                push(dest, true);
            }
            Instr::Cmov { src, .. } | Instr::Imul { src, .. } | Instr::Div { src } => {
                push(src, false)
            }
            Instr::Cmp { a, b } | Instr::Test { a, b } => {
                push(a, false);
                push(b, false);
            }
            Instr::Shift { dest, .. } | Instr::Unary { dest, .. } if dest.is_mem() => {
                push(dest, true);
            }
            Instr::Xchg { src, .. } if src.is_mem() => {
                push(src, true);
            }
            _ => {}
        }
        out
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dest, src, lock } => {
                if *lock && dest.is_mem() {
                    write!(f, "LOCK ")?;
                }
                write!(f, "{} {}, {}", op.mnemonic(), dest, src)
            }
            Instr::Mov { dest, src } => write!(f, "MOV {dest}, {src}"),
            Instr::Cmov { cond, dest, src, width } => {
                write!(f, "CMOV{} {}, {}", cond.suffix(), dest.name(*width), src)
            }
            Instr::Setcc { cond, dest } => {
                write!(f, "SET{} {}", cond.suffix(), dest.name(Width::Byte))
            }
            Instr::Cmp { a, b } => write!(f, "CMP {a}, {b}"),
            Instr::Test { a, b } => write!(f, "TEST {a}, {b}"),
            Instr::Shift { op, dest, amount } => {
                write!(f, "{} {}, {}", op.mnemonic(), dest, amount)
            }
            Instr::Unary { op, dest } => write!(f, "{} {}", op.mnemonic(), dest),
            Instr::Div { src } => write!(f, "DIV {src}"),
            Instr::Imul { dest, src } => write!(f, "IMUL {dest}, {src}"),
            Instr::Lea { dest, addr } => {
                write!(f, "LEA {}, {}", dest, addr.display(Width::Qword))
            }
            Instr::Bswap { dest } => write!(f, "BSWAP {dest}"),
            Instr::Xchg { dest, src } => write!(f, "XCHG {dest}, {src}"),
            Instr::Lfence => write!(f, "LFENCE"),
            Instr::Mfence => write!(f, "MFENCE"),
            Instr::Nop => write!(f, "NOP"),
        }
    }
}

/// A pending jump target: either a resolved [`BlockId`] or a named label
/// (used by the builder before resolution).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JumpTarget {
    /// A resolved basic-block id.
    Block(BlockId),
    /// An unresolved label name.
    Label(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{MemOperand, Operand};

    fn mem_rax() -> Operand {
        Operand::mem_w(MemOperand::base_index(Reg::R14, Reg::Rax), Width::Byte)
    }

    #[test]
    fn cond_inverted_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.inverted().inverted(), c);
            assert_ne!(c.inverted(), c);
        }
    }

    #[test]
    fn alu_reads_writes() {
        let i = Instr::Alu {
            op: AluOp::Sub,
            dest: mem_rax(),
            src: Operand::imm(35),
            lock: true,
        };
        assert!(i.reads_mem());
        assert!(i.writes_mem());
        assert!(i.writes_flags());
        assert!(!i.reads_flags());
        let reads = i.reads_regs();
        assert!(reads.contains(&Reg::R14));
        assert!(reads.contains(&Reg::Rax));
        assert!(i.writes_regs().is_empty());
    }

    #[test]
    fn adc_reads_carry() {
        let i = Instr::Alu {
            op: AluOp::Adc,
            dest: Operand::reg(Reg::Rbx),
            src: Operand::reg(Reg::Rcx),
            lock: false,
        };
        assert!(i.reads_flags());
    }

    #[test]
    fn mov_load_is_read_only() {
        let i = Instr::Mov { dest: Operand::reg(Reg::Rbx), src: mem_rax() };
        assert!(i.reads_mem());
        assert!(!i.writes_mem());
        assert_eq!(i.writes_regs(), vec![Reg::Rbx]);
    }

    #[test]
    fn mov_store_is_write_only() {
        let i = Instr::Mov { dest: mem_rax(), src: Operand::reg(Reg::Rbx) };
        assert!(!i.reads_mem());
        assert!(i.writes_mem());
        assert!(i.writes_regs().is_empty());
    }

    #[test]
    fn div_implicit_operands() {
        let i = Instr::Div { src: Operand::reg(Reg::Rcx) };
        let reads = i.reads_regs();
        assert!(reads.contains(&Reg::Rax));
        assert!(reads.contains(&Reg::Rdx));
        assert!(reads.contains(&Reg::Rcx));
        assert_eq!(i.writes_regs(), vec![Reg::Rax, Reg::Rdx]);
        assert!(i.is_variable_latency());
    }

    #[test]
    fn fences() {
        assert!(Instr::Lfence.is_fence());
        assert!(Instr::Mfence.is_fence());
        assert!(!Instr::Nop.is_fence());
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Instr::Alu {
            op: AluOp::Sub,
            dest: mem_rax(),
            src: Operand::imm(35),
            lock: true,
        };
        assert_eq!(format!("{i}"), "LOCK SUB byte ptr [R14 + RAX], 35");
        let i = Instr::Alu {
            op: AluOp::And,
            dest: Operand::reg(Reg::Rax),
            src: Operand::imm(0b111111000000),
            lock: false,
        };
        assert_eq!(format!("{i}"), "AND RAX, 4032");
        let i = Instr::Cmov {
            cond: Cond::Be,
            dest: Reg::Rcx,
            src: Operand::mem(MemOperand::base_index(Reg::R14, Reg::Rdx)),
            width: Width::Qword,
        };
        assert_eq!(format!("{i}"), "CMOVBE RCX, qword ptr [R14 + RDX]");
    }

    #[test]
    fn mem_operands_classification() {
        let store = Instr::Mov { dest: mem_rax(), src: Operand::imm(1) };
        let ops = store.mem_operands();
        assert_eq!(ops.len(), 1);
        assert!(ops[0].2, "store should be a write");
        let rmw = Instr::Unary { op: UnaryOp::Inc, dest: mem_rax() };
        assert!(rmw.reads_mem() && rmw.writes_mem());
    }

    #[test]
    fn setcc_and_cmov_read_flags() {
        let s = Instr::Setcc { cond: Cond::Ns, dest: Reg::Rbx };
        assert!(s.reads_flags());
        assert!(!s.writes_flags());
        assert_eq!(s.writes_regs(), vec![Reg::Rbx]);
    }

    #[test]
    fn lea_does_not_access_memory() {
        let i = Instr::Lea { dest: Reg::Rax, addr: MemOperand::base_index(Reg::R14, Reg::Rbx) };
        assert!(!i.accesses_mem());
        assert_eq!(i.writes_regs(), vec![Reg::Rax]);
        assert!(i.reads_regs().contains(&Reg::Rbx));
    }

    #[test]
    fn xchg_reads_and_writes_both() {
        let i = Instr::Xchg { dest: Reg::Rax, src: Operand::reg(Reg::Rbx) };
        assert_eq!(i.writes_regs(), vec![Reg::Rax, Reg::Rbx]);
        let i = Instr::Xchg { dest: Reg::Rax, src: mem_rax() };
        assert!(i.reads_mem() && i.writes_mem());
    }
}
