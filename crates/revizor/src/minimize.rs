//! The postprocessor: counterexample minimization (§5.7).
//!
//! When a violation is detected, the postprocessor shrinks it in three
//! stages:
//!
//! 1. **Minimal input sequence** — remove inputs from the priming sequence
//!    as long as the violation persists (the remaining inputs are exactly
//!    what is needed to prime the microarchitectural state);
//! 2. **Minimal test case** — remove one instruction at a time while the
//!    violation persists;
//! 3. **Leak localization** — insert `LFENCE`s while the violation
//!    persists; the remaining fence-free region is the location of the
//!    leak (Figure 4).  Placements inside the statically identified
//!    speculation window ([`staticanalysis`](crate::staticanalysis)) are
//!    tried first, so a tight check budget is spent on the positions that
//!    actually decide the leak location.

use crate::fuzzer::Revizor;
use rvz_isa::{Input, Instr, TestCase};
use rvz_uarch::CpuUnderTest;

/// A minimized counterexample.
#[derive(Debug, Clone)]
pub struct MinimizedViolation {
    /// The minimized test case (instructions removed, fences inserted).
    pub test_case: TestCase,
    /// The minimized priming input sequence.
    pub inputs: Vec<Input>,
    /// Positions `(block index, instruction index)` of the instructions
    /// that remained un-fenced — the paper's "location of leakage".
    pub leaking_region: Vec<(usize, usize)>,
    /// Instructions removed during stage 2.
    pub removed_instructions: usize,
    /// Inputs removed during stage 1.
    pub removed_inputs: usize,
}

/// The postprocessor.  It re-runs the full MRT pipeline (through
/// [`Revizor::test_with_inputs`]) after every candidate simplification, so
/// every intermediate step is re-validated against the actual CPU.
#[derive(Debug, Clone, Copy)]
pub struct Postprocessor {
    /// Upper bound on pipeline re-runs, to keep minimization time bounded.
    pub max_checks: usize,
}

impl Default for Postprocessor {
    fn default() -> Self {
        Postprocessor { max_checks: 500 }
    }
}

impl Postprocessor {
    /// Postprocessor with the default budget.
    pub fn new() -> Postprocessor {
        Postprocessor::default()
    }

    /// Minimize a violating (test case, input sequence) pair.
    ///
    /// `fuzzer` must be configured with the same contract and executor mode
    /// that produced the violation.
    pub fn minimize<C: CpuUnderTest>(
        &self,
        fuzzer: &mut Revizor<C>,
        test_case: &TestCase,
        inputs: &[Input],
    ) -> MinimizedViolation {
        let mut checks = 0usize;
        let mut violates = |tc: &TestCase, inputs: &[Input]| -> bool {
            if checks >= self.max_checks {
                return false;
            }
            checks += 1;
            fuzzer
                .test_with_inputs(tc, inputs)
                .map(|o| o.confirmed_violation.is_some())
                .unwrap_or(false)
        };

        // Stage 1: minimal input sequence.
        let mut inputs: Vec<Input> = inputs.to_vec();
        let original_inputs = inputs.len();
        let mut i = 0;
        while i < inputs.len() && inputs.len() > 2 {
            let mut candidate = inputs.clone();
            candidate.remove(i);
            if violates(test_case, &candidate) {
                inputs = candidate;
            } else {
                i += 1;
            }
        }

        // Stage 2: minimal test case.
        let mut tc = test_case.clone();
        let original_instrs = tc.instruction_count();
        let mut changed = true;
        while changed {
            changed = false;
            'outer: for b in 0..tc.blocks().len() {
                for i in 0..tc.blocks()[b].instrs.len() {
                    let mut candidate = tc.clone();
                    candidate.blocks_mut()[b].instrs.remove(i);
                    if violates(&candidate, &inputs) {
                        tc = candidate;
                        changed = true;
                        break 'outer;
                    }
                }
            }
        }

        // Stage 3: insert LFENCEs while the violation persists; instructions
        // that cannot be fenced are the leaking region.  Placements inside
        // the statically identified speculation window
        // ([`TaintReport::window`](crate::staticanalysis::TaintReport)) are
        // tried first, back to front — those are the cuts that decide the
        // leak location, so a tight `max_checks` budget is spent where it
        // matters — followed by the remaining positions, also back to front
        // (the plain Figure 4 order).
        let window = crate::staticanalysis::analyze(&tc).window;
        let all: Vec<(usize, usize)> = tc
            .blocks()
            .iter()
            .enumerate()
            .flat_map(|(b, block)| (0..block.instrs.len()).map(move |i| (b, i)))
            .collect();
        let mut order: Vec<(usize, usize)> =
            all.iter().rev().copied().filter(|p| window.contains(p)).collect();
        order.extend(all.iter().rev().copied().filter(|p| !window.contains(p)));

        // Both `order` and `leaking_region` use the stage-2 (pre-fence)
        // coordinates; every fence kept at a smaller index of the same block
        // shifts the actual insertion point right by one.
        let mut leaking_region = Vec::new();
        let mut inserted: Vec<Vec<usize>> = vec![Vec::new(); tc.blocks().len()];
        for (b, i) in order {
            let at = i + inserted[b].iter().filter(|&&k| k < i).count();
            let mut candidate = tc.clone();
            candidate.blocks_mut()[b].instrs.insert(at, Instr::Lfence);
            if violates(&candidate, &inputs) {
                tc = candidate;
                inserted[b].push(i);
            } else {
                leaking_region.push((b, i));
            }
        }
        leaking_region.sort_unstable();

        // `instruction_count()` includes the stage-3 fences, so add them
        // back before subtracting: summing first keeps the arithmetic in
        // range when stage 3 inserts more fences than stage 2 removed
        // instructions (an already-minimal test case).
        let fences: usize =
            tc.blocks().iter().map(|b| b.instrs.iter().filter(|i| i.is_fence()).count()).sum();
        MinimizedViolation {
            removed_instructions: original_instrs + fences - tc.instruction_count(),
            removed_inputs: original_inputs - inputs.len(),
            test_case: tc,
            inputs,
            leaking_region,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuzzerConfig;
    use crate::gadgets;
    use crate::targets::Target;
    use rvz_executor::ExecutorConfig;
    use rvz_gen::InputGenerator;
    use rvz_model::Contract;

    fn v1_fuzzer() -> Revizor<rvz_uarch::SpecCpu> {
        let target = Target::target5();
        let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
        Revizor::new(target.cpu(), config).with_target(target)
    }

    #[test]
    fn minimizes_a_spectre_v1_counterexample() {
        let mut fuzzer = v1_fuzzer();
        let tc = gadgets::spectre_v1();
        let inputs = InputGenerator::new(2).generate(&tc, 11, 24);
        let outcome = fuzzer.test_with_inputs(&tc, &inputs).unwrap();
        assert!(outcome.confirmed_violation.is_some(), "gadget must violate CT-SEQ before minimizing");

        let minimized = Postprocessor::new().minimize(&mut fuzzer, &tc, &inputs);
        // The violation still reproduces on the minimized artifact.
        let check = fuzzer.test_with_inputs(&minimized.test_case, &minimized.inputs).unwrap();
        assert!(check.confirmed_violation.is_some());
        // The input sequence shrank (24 random inputs are far more than
        // needed to prime a single branch).
        assert!(minimized.inputs.len() < inputs.len());
        assert!(minimized.removed_inputs > 0);
        // The leaking region is non-empty and lies on the speculative path
        // (block 1 of the gadget), mirroring Figure 4.
        assert!(!minimized.leaking_region.is_empty());
        assert!(minimized.leaking_region.iter().any(|&(b, _)| b == 1));
        // Fences were inserted somewhere outside the leaking region.
        let fences: usize = minimized
            .test_case
            .blocks()
            .iter()
            .map(|b| b.instrs.iter().filter(|i| i.is_fence()).count())
            .sum();
        assert!(fences > 0, "stage 3 must have inserted at least one LFENCE");
    }

    #[test]
    fn minimizing_an_already_minimal_test_case_does_not_underflow() {
        // A stripped V1 gadget: every instruction is load-bearing, so stage 2
        // removes nothing, while stage 3 can still fence positions outside
        // the speculative path.  `removed_instructions` must come out as 0 —
        // computing it as `original - final + fences` would underflow.
        let tc = rvz_isa::builder::TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(rvz_isa::Reg::Rax, 128);
                b.jcc(rvz_isa::Cond::B, "in", "done");
            })
            .block("in", |b| {
                b.load(rvz_isa::Reg::Rcx, rvz_isa::Reg::R14, rvz_isa::Reg::Rbx);
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build();
        let original = tc.instruction_count();

        let mut fuzzer = v1_fuzzer();
        let inputs = InputGenerator::new(2).generate(&tc, 11, 24);
        let outcome = fuzzer.test_with_inputs(&tc, &inputs).unwrap();
        assert!(outcome.confirmed_violation.is_some(), "minimal gadget must violate CT-SEQ");

        let minimized = Postprocessor::new().minimize(&mut fuzzer, &tc, &inputs);
        assert_eq!(minimized.removed_instructions, 0, "nothing removable in a minimal gadget");
        let fences: usize = minimized
            .test_case
            .blocks()
            .iter()
            .map(|b| b.instrs.iter().filter(|i| i.is_fence()).count())
            .sum();
        assert!(fences > 0, "stage 3 must fence the non-leaking prefix");
        assert_eq!(minimized.test_case.instruction_count(), original + fences);
        assert!(!minimized.leaking_region.is_empty());
    }

    #[test]
    fn static_window_covers_the_leaking_region() {
        // The leaking region found dynamically (positions whose fence kills
        // the violation) must lie inside the static over-approximation that
        // stage 3 uses to order its placements — otherwise the window-first
        // ordering would demote the decisive checks to the tail of the
        // budget.
        let mut fuzzer = v1_fuzzer();
        let tc = gadgets::spectre_v1();
        let inputs = InputGenerator::new(2).generate(&tc, 11, 24);
        let minimized = Postprocessor::new().minimize(&mut fuzzer, &tc, &inputs);
        assert!(!minimized.leaking_region.is_empty());

        // `leaking_region` uses pre-fence coordinates: strip the stage-3
        // fences to recover the test case the window was computed on.
        let mut stripped = minimized.test_case.clone();
        for block in stripped.blocks_mut() {
            block.instrs.retain(|i| !i.is_fence());
        }
        let window = crate::staticanalysis::analyze(&stripped).window;
        for pos in &minimized.leaking_region {
            assert!(
                window.contains(pos),
                "leaking position {pos:?} outside the static speculation window {window:?}"
            );
        }
    }

    #[test]
    fn minimization_respects_check_budget() {
        let mut fuzzer = v1_fuzzer();
        let tc = gadgets::spectre_v1();
        let inputs = InputGenerator::new(2).generate(&tc, 11, 16);
        let pp = Postprocessor { max_checks: 0 };
        // With an exhausted budget nothing reproduces, so nothing shrinks
        // structurally; the call still terminates quickly and returns.
        let m = pp.minimize(&mut fuzzer, &tc, &inputs);
        assert_eq!(m.inputs.len(), inputs.len());
    }
}
