//! Branch prediction structures: conditional predictor, BTB and RSB.
//!
//! These structures are the microarchitectural context (`Ctx` in
//! Definition 1) that the executor cannot set directly and instead controls
//! through *priming*: running many inputs in sequence so that earlier inputs
//! train the predictors for later ones (§5.3).

use rvz_isa::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A site identifier for a branch: the block whose terminator it is.
pub type BranchSite = usize;

/// Two-bit saturating-counter predictor for conditional branches, indexed by
/// branch site (a classic bimodal predictor).  A global-history register is
/// maintained for completeness but not mixed into the index by default:
/// per-site counters make the predictor easy to mistrain through priming,
/// which is exactly the property the paper relies on to surface Spectre V1
/// with few inputs (Table 5).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BranchPredictor {
    counters: HashMap<u64, u8>,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Number of global-history bits mixed into the counter index.
    const HISTORY_BITS: u32 = 0;

    /// New predictor with all counters weakly not-taken.
    pub fn new() -> BranchPredictor {
        BranchPredictor::default()
    }

    fn key(&self, site: BranchSite) -> u64 {
        ((site as u64) << Self::HISTORY_BITS) ^ (self.history & ((1 << Self::HISTORY_BITS) - 1))
    }

    /// Predict the direction of the branch at `site`.
    pub fn predict(&self, site: BranchSite) -> bool {
        let c = self.counters.get(&self.key(site)).copied().unwrap_or(1);
        c >= 2
    }

    /// Update the predictor with the architecturally resolved direction and
    /// record whether the preceding prediction was correct.
    pub fn update(&mut self, site: BranchSite, taken: bool) {
        let key = self.key(site);
        let predicted = self.predict(site);
        self.predictions += 1;
        if predicted != taken {
            self.mispredictions += 1;
        }
        let c = self.counters.entry(key).or_insert(1);
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | (taken as u64);
    }

    /// Total predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions observed so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Forget everything (power-on state).
    pub fn reset(&mut self) {
        *self = BranchPredictor::default();
    }
}

/// Branch target buffer for indirect jumps: predicts the last observed
/// target of each site (the mechanism behind Spectre V2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Btb {
    targets: HashMap<BranchSite, BlockId>,
}

impl Btb {
    /// Empty BTB.
    pub fn new() -> Btb {
        Btb::default()
    }

    /// Predicted target for the site, if any.
    pub fn predict(&self, site: BranchSite) -> Option<BlockId> {
        self.targets.get(&site).copied()
    }

    /// Record the architecturally resolved target.
    pub fn update(&mut self, site: BranchSite, target: BlockId) {
        self.targets.insert(site, target);
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.targets.clear();
    }
}

/// Return stack buffer: predicts return targets from a small hardware stack
/// (the mechanism behind Spectre V5 / ret2spec).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rsb {
    stack: Vec<BlockId>,
    capacity: usize,
}

impl Rsb {
    /// RSB with the conventional 16-entry capacity.
    pub fn new() -> Rsb {
        Rsb::with_capacity(16)
    }

    /// RSB with a specific capacity.
    pub fn with_capacity(capacity: usize) -> Rsb {
        Rsb { stack: Vec::new(), capacity }
    }

    /// Record a call's return target.
    pub fn push(&mut self, target: BlockId) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(target);
    }

    /// Predict (and consume) the target of the next return.
    pub fn pop_predict(&mut self) -> Option<BlockId> {
        self.stack.pop()
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.stack.clear();
    }
}

impl Default for Rsb {
    fn default() -> Self {
        Rsb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_initially_predicts_not_taken() {
        let p = BranchPredictor::new();
        assert!(!p.predict(0));
    }

    #[test]
    fn predictor_trains_towards_taken() {
        let mut p = BranchPredictor::new();
        // With history involved, train repeatedly until stable.
        for _ in 0..8 {
            p.update(5, true);
        }
        assert!(p.predict(5));
        assert!(p.predictions() >= 8);
    }

    #[test]
    fn predictor_counts_mispredictions() {
        let mut p = BranchPredictor::new();
        p.update(1, true); // initial prediction is not-taken -> mispredict
        assert_eq!(p.mispredictions(), 1);
        for _ in 0..8 {
            p.update(1, true);
        }
        let before = p.mispredictions();
        p.update(1, true);
        assert_eq!(p.mispredictions(), before, "well-trained branch predicts correctly");
    }

    #[test]
    fn predictor_reset() {
        let mut p = BranchPredictor::new();
        for _ in 0..8 {
            p.update(3, true);
        }
        p.reset();
        assert!(!p.predict(3));
        assert_eq!(p.predictions(), 0);
    }

    #[test]
    fn alternating_pattern_causes_mispredictions() {
        let mut p = BranchPredictor::new();
        for i in 0..32 {
            p.update(7, i % 2 == 0);
        }
        assert!(p.mispredictions() > 0);
    }

    #[test]
    fn btb_predicts_last_target() {
        let mut b = Btb::new();
        assert_eq!(b.predict(0), None);
        b.update(0, BlockId(3));
        assert_eq!(b.predict(0), Some(BlockId(3)));
        b.update(0, BlockId(5));
        assert_eq!(b.predict(0), Some(BlockId(5)));
        b.reset();
        assert_eq!(b.predict(0), None);
    }

    #[test]
    fn rsb_predicts_in_lifo_order() {
        let mut r = Rsb::new();
        r.push(BlockId(1));
        r.push(BlockId(2));
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop_predict(), Some(BlockId(2)));
        assert_eq!(r.pop_predict(), Some(BlockId(1)));
        assert_eq!(r.pop_predict(), None);
    }

    #[test]
    fn rsb_overflows_by_dropping_oldest() {
        let mut r = Rsb::with_capacity(2);
        r.push(BlockId(1));
        r.push(BlockId(2));
        r.push(BlockId(3));
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop_predict(), Some(BlockId(3)));
        assert_eq!(r.pop_predict(), Some(BlockId(2)));
        assert_eq!(r.pop_predict(), None, "oldest entry was dropped");
    }
}
