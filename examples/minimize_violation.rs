//! Postprocessing (§5.7, Figure 4): take a violating test case, then
//! minimize the input sequence, remove irrelevant instructions and locate
//! the leaking region by LFENCE insertion.
//!
//! Run with: `cargo run --release --example minimize_violation`

use revizor_suite::prelude::*;

fn main() {
    let target = Target::target5();
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());

    let gadget = gadgets::spectre_v1();
    let inputs = InputGenerator::new(2).generate(&gadget, 11, 24);
    println!("=== Original violating test case ===\n{}", gadget.to_asm());

    let outcome = fuzzer.test_with_inputs(&gadget, &inputs).expect("pipeline runs");
    match &outcome.confirmed_violation {
        Some(v) => println!(
            "violation confirmed between inputs #{} and #{} ({} inputs in the priming sequence)\n",
            v.input_a,
            v.input_b,
            inputs.len()
        ),
        None => {
            println!("no violation with this seed — nothing to minimize");
            return;
        }
    }

    let minimized = Postprocessor::new().minimize(&mut fuzzer, &gadget, &inputs);
    println!("=== Minimized test case (Figure 4 analogue) ===\n{}", minimized.test_case.to_asm());
    println!("inputs: {} -> {}", inputs.len(), minimized.inputs.len());
    println!("leaking region (block, instruction index): {:?}", minimized.leaking_region);
    println!();
    println!(
        "The instructions in the leaking region are the ones that cannot be fenced without \
         making the violation disappear — the location of the speculative leak."
    );
}
