//! Memory-sandbox layout.
//!
//! Generated test cases confine every memory access to a dedicated region —
//! the *sandbox* (§5.1).  The generator masks address registers to a
//! cache-line-aligned offset within one or two 4 KiB pages, and the sandbox
//! base lives in `R14`.  The executor additionally designates one page as the
//! *faulty* page whose "Accessed" bit is cleared so that the first access to
//! it triggers a microcode assist (§5.3, `*+Assist` mode).

use serde::{Deserialize, Serialize};

/// Size of a page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Size of a cache line in bytes (also the L1D set stride observed by
/// Prime+Probe).
pub const CACHE_LINE: u64 = 64;

/// Number of L1D cache sets visible to the side channel: a 4 KiB page maps
/// exactly one line to each of the 64 sets, which is why Prime+Probe and
/// Flush+Reload produce equivalent traces on a 4 KiB sandbox (§6.1).
pub const L1D_SETS: usize = 64;

/// Virtual address at which the sandbox is mapped inside the emulator and
/// the CPU simulator.  The concrete value is arbitrary but fixed so contract
/// traces are reproducible.
pub const SANDBOX_BASE_ADDR: u64 = 0x0010_0000;

/// Description of the sandbox memory layout for one test-case run.
///
/// # Example
/// ```
/// use rvz_isa::SandboxLayout;
/// let l = SandboxLayout::two_pages();
/// assert_eq!(l.size(), 2 * 4096 + SandboxLayout::STACK_SIZE);
/// assert!(l.contains(l.base + 4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SandboxLayout {
    /// Base virtual address (held in `R14`).
    pub base: u64,
    /// Number of data pages (1 or 2 in the paper's experiments).
    pub data_pages: u64,
    /// Index of the page whose accessed-bit is cleared in `*+Assist` mode,
    /// if any.
    pub assist_page: Option<u64>,
    /// Cache-line offset (0..64) added to every masked access so different
    /// test cases exercise different alignments (§5.1).
    pub line_offset: u64,
}

impl SandboxLayout {
    /// Size of the dedicated stack area appended after the data pages, used
    /// by `CALL`/`RET`.
    pub const STACK_SIZE: u64 = 256;

    /// Single data page, no assist page, zero alignment offset.
    pub fn one_page() -> SandboxLayout {
        SandboxLayout {
            base: SANDBOX_BASE_ADDR,
            data_pages: 1,
            assist_page: None,
            line_offset: 0,
        }
    }

    /// Two data pages, no assist page, zero alignment offset.
    pub fn two_pages() -> SandboxLayout {
        SandboxLayout {
            base: SANDBOX_BASE_ADDR,
            data_pages: 2,
            assist_page: None,
            line_offset: 0,
        }
    }

    /// Enable the microcode-assist page (clears the accessed bit on the given
    /// data page).
    ///
    /// # Panics
    /// Panics if `page >= self.data_pages`.
    pub fn with_assist_page(mut self, page: u64) -> SandboxLayout {
        assert!(page < self.data_pages, "assist page {page} out of range");
        self.assist_page = Some(page);
        self
    }

    /// Set the cache-line alignment offset (taken modulo the line size).
    pub fn with_line_offset(mut self, offset: u64) -> SandboxLayout {
        self.line_offset = offset % CACHE_LINE;
        self
    }

    /// Total sandbox size in bytes (data pages plus the stack area).
    pub fn size(&self) -> u64 {
        self.data_pages * PAGE_SIZE + Self::STACK_SIZE
    }

    /// Size of the data area only.
    pub fn data_size(&self) -> u64 {
        self.data_pages * PAGE_SIZE
    }

    /// First address of the stack area (the stack pointer is initialized to
    /// the *end* of the stack area and grows downwards).
    pub fn stack_base(&self) -> u64 {
        self.base + self.data_size()
    }

    /// Initial value of `RSP`.
    pub fn initial_rsp(&self) -> u64 {
        self.base + self.size() - 8
    }

    /// Does the sandbox contain `addr`?
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size()
    }

    /// Does the sandbox contain the `len`-byte access starting at `addr`?
    pub fn contains_range(&self, addr: u64, len: u64) -> bool {
        self.contains(addr) && addr + len <= self.base + self.size()
    }

    /// Offset of `addr` within the sandbox.
    ///
    /// # Panics
    /// Panics if `addr` is outside the sandbox.
    pub fn offset_of(&self, addr: u64) -> u64 {
        assert!(self.contains(addr), "address {addr:#x} outside sandbox");
        addr - self.base
    }

    /// The data page index containing `addr`, or `None` if `addr` falls in
    /// the stack area or outside the sandbox.
    pub fn page_of(&self, addr: u64) -> Option<u64> {
        if !self.contains(addr) {
            return None;
        }
        let off = addr - self.base;
        if off < self.data_size() {
            Some(off / PAGE_SIZE)
        } else {
            None
        }
    }

    /// Is `addr` on the microcode-assist page?
    pub fn is_assist_addr(&self, addr: u64) -> bool {
        match (self.assist_page, self.page_of(addr)) {
            (Some(p), Some(q)) => p == q,
            _ => false,
        }
    }

    /// L1D cache-set index of `addr` (the quantity exposed by a Prime+Probe
    /// hardware trace).
    pub fn cache_set_of(&self, addr: u64) -> usize {
        ((addr / CACHE_LINE) as usize) % L1D_SETS
    }

    /// The canonical address-masking constant used by the generator's
    /// instrumentation: keeps the low line-offset bits zero and the address
    /// within `data_pages * 4096`.
    ///
    /// For one page this is `0b111111000000` (the constant visible in
    /// Figure 3 of the paper); for two pages the mask has one extra bit.
    pub fn address_mask(&self) -> u64 {
        (self.data_size() - 1) & !(CACHE_LINE - 1)
    }
}

impl Default for SandboxLayout {
    fn default() -> Self {
        SandboxLayout::one_page()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_page_mask_matches_paper_constant() {
        let l = SandboxLayout::one_page();
        assert_eq!(l.address_mask(), 0b111111000000);
    }

    #[test]
    fn two_page_mask() {
        let l = SandboxLayout::two_pages();
        assert_eq!(l.address_mask(), 0b1111111000000);
    }

    #[test]
    fn layout_sizes() {
        let l = SandboxLayout::one_page();
        assert_eq!(l.size(), PAGE_SIZE + SandboxLayout::STACK_SIZE);
        assert_eq!(l.data_size(), PAGE_SIZE);
        assert_eq!(l.stack_base(), l.base + PAGE_SIZE);
        assert_eq!(l.initial_rsp(), l.base + l.size() - 8);
    }

    #[test]
    fn containment_and_offsets() {
        let l = SandboxLayout::two_pages();
        assert!(l.contains(l.base));
        assert!(l.contains(l.base + l.size() - 1));
        assert!(!l.contains(l.base + l.size()));
        assert!(!l.contains(l.base - 1));
        assert_eq!(l.offset_of(l.base + 100), 100);
        assert!(l.contains_range(l.base, 8));
        assert!(!l.contains_range(l.base + l.size() - 4, 8));
    }

    #[test]
    fn page_of_and_assist() {
        let l = SandboxLayout::two_pages().with_assist_page(1);
        assert_eq!(l.page_of(l.base), Some(0));
        assert_eq!(l.page_of(l.base + PAGE_SIZE), Some(1));
        assert_eq!(l.page_of(l.stack_base()), None);
        assert!(l.is_assist_addr(l.base + PAGE_SIZE + 64));
        assert!(!l.is_assist_addr(l.base + 64));
    }

    #[test]
    #[should_panic(expected = "assist page")]
    fn assist_page_out_of_range_panics() {
        let _ = SandboxLayout::one_page().with_assist_page(1);
    }

    #[test]
    fn cache_set_mapping_covers_all_sets() {
        let l = SandboxLayout::one_page();
        let mut seen = [false; L1D_SETS];
        for line in 0..64u64 {
            seen[l.cache_set_of(l.base + line * CACHE_LINE)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn line_offset_is_wrapped() {
        let l = SandboxLayout::one_page().with_line_offset(70);
        assert_eq!(l.line_offset, 6);
    }
}
