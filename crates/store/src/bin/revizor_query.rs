//! Query the indexed violation store without re-parsing result payloads.
//!
//! ```text
//! revizor-query --store=DIR [--class=V1] [--target=N] [--contract=NAME]
//!               [--vuln=CLASS] [--mnemonic=M] [--since-job=JOB] [--json]
//! ```
//!
//! The store is written by `revizor-serve --store=DIR` as jobs finish (one
//! entry per violation cell); identical minimized gadgets — same static
//! signature, same program shape after register canonicalization — are
//! merged into one row with an occurrence count and the list of observing
//! jobs.
//!
//! * `--class` — gadget class label (`V1`, `V1.1`, `V2`, `V4`, `V5-ret`, …).
//! * `--target` — Table 2 target id of the violating cell.
//! * `--contract` — contract name of the violating cell (e.g. `CT-SEQ`).
//! * `--vuln` — vulnerability class label (e.g. `Spectre-V1`).
//! * `--mnemonic` — only gadgets whose program contains the mnemonic
//!   (lowercase; terminators contribute `jmp` / `jcc`).
//! * `--since-job` — only gadgets first observed *after* the named job's
//!   last entry ("show me new gadget classes since job X").
//! * `--json` — machine-readable output instead of the table.
//!
//! Examples: all V4 hits on target 3 is `--class=V4 --target=3`; anything
//! new since yesterday's sweep is `--since-job=sweep-42`.

use rvz_bench::json::Json;
use rvz_bench::{flag_from_args, flag_value_from_args};
use rvz_store::{MergedEntry, Store};

const HELP: &str = "revizor-query: query the indexed violation store

usage: revizor-query --store=DIR [filters]

  --store=DIR        the store directory (revizor-serve --store)
  --class=LABEL      filter by gadget class (V1, V1.1, V2, V4, V5-ret, ...)
  --target=N         filter by Table 2 target id
  --contract=NAME    filter by contract name (e.g. CT-SEQ)
  --vuln=CLASS       filter by vulnerability class label
  --mnemonic=M       filter by program mnemonic (lowercase; jmp/jcc for branches)
  --since-job=JOB    only gadgets first observed after JOB's last entry
  --json             machine-readable output
  -h, --help         this text
";

fn matches(m: &MergedEntry) -> bool {
    if let Some(class) = flag_value_from_args::<String>("--class") {
        if m.entry.class != class {
            return false;
        }
    }
    if let Some(target) = flag_value_from_args::<u8>("--target") {
        if m.entry.target != target {
            return false;
        }
    }
    if let Some(contract) = flag_value_from_args::<String>("--contract") {
        if m.entry.contract != contract {
            return false;
        }
    }
    if let Some(vuln) = flag_value_from_args::<String>("--vuln") {
        if m.entry.vulnerability != vuln {
            return false;
        }
    }
    if let Some(mnemonic) = flag_value_from_args::<String>("--mnemonic") {
        if !m.entry.mnemonics.contains(&mnemonic) {
            return false;
        }
    }
    true
}

fn merged_json(m: &MergedEntry) -> Json {
    Json::obj()
        .field("class", m.entry.class.as_str())
        .field("signature", m.entry.signature.as_str())
        .field("target", m.entry.target)
        .field("contract", m.entry.contract.as_str())
        .field("vulnerability", m.entry.vulnerability.as_str())
        .field(
            "mnemonics",
            Json::Arr(m.entry.mnemonics.iter().map(|s| Json::Str(s.clone())).collect()),
        )
        .field("fingerprint", m.entry.fingerprint)
        .field("count", m.count)
        .field("jobs", Json::Arr(m.jobs.iter().map(|s| Json::Str(s.clone())).collect()))
}

fn main() {
    if flag_from_args("--help") || flag_from_args("-h") {
        print!("{HELP}");
        return;
    }
    let Some(dir) = flag_value_from_args::<String>("--store") else {
        eprintln!("revizor-query: pass --store=DIR (the directory revizor-serve --store writes)");
        std::process::exit(2);
    };
    let store = match Store::open(&dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("revizor-query: cannot open store `{dir}`: {e}");
            std::process::exit(1);
        }
    };
    let merged = match flag_value_from_args::<String>("--since-job") {
        Some(job) => store.new_since(&job),
        None => store.merged(),
    };
    let merged = match merged {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("revizor-query: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<&MergedEntry> = merged.iter().filter(|m| matches(m)).collect();

    if flag_from_args("--json") {
        let doc = Json::obj()
            .field("gadgets", Json::Arr(rows.iter().map(|m| merged_json(m)).collect()))
            .field("distinct", rows.len() as u64)
            .field("observations", rows.iter().map(|m| m.count).sum::<u64>());
        println!("{}", doc.render());
        return;
    }
    println!(
        "CLASS    SIGNATURE                    TARGET  CONTRACT   COUNT  \
         JOBS                     MNEMONICS"
    );
    for m in &rows {
        println!(
            "{:<8} {:<28} {:>6}  {:<10} {:>5}  {:<24} {}",
            m.entry.class,
            m.entry.signature,
            m.entry.target,
            m.entry.contract,
            m.count,
            m.jobs.join(","),
            m.entry.mnemonics.join(" "),
        );
    }
    println!(
        "{} distinct gadget(s), {} observation(s)",
        rows.len(),
        rows.iter().map(|m| m.count).sum::<u64>()
    );
}
