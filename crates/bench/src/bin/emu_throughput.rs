//! emu_throughput: the machine-readable perf trajectory of the pre-decoded
//! emulator inner loop, written to `BENCH_emu.json` (same pattern as
//! `fleet-bench` / `BENCH_fleet.json`) so future changes can track the
//! interpreter's throughput without parsing README prose.
//!
//! ```text
//! emu_throughput [--out=BENCH_emu.json] [--programs=8] [--reps=N]
//! ```
//!
//! Three sections, one per execution layer, each timing the retained
//! reference interpreter (per-step AST walk, heap-allocated effect lists,
//! full-state-clone speculation checkpoints) against the pre-decoded loop
//! (dense instruction array decoded once per program, inline event buffers,
//! delta checkpoints) over the same generated workload:
//!
//! * `arch`  — the architectural runner ([`Runner`]), no speculation;
//! * `model` — the contract model (CT-COND-BPAS with nested speculation:
//!   the heaviest ctrace collection loop);
//! * `uarch` — the speculative CPU ([`SpecCpu`]) with assists enabled.
//!
//! Decode time is charged to the decoded side (once per program, amortized
//! over `reps × inputs` runs — exactly how the executor and campaign use
//! it).  Before anything is timed, every (program, input) pair is run
//! through both paths and compared; `verdicts_identical` in the output is
//! that comparison, asserted in-binary.  A speedup that changes verdicts is
//! a bug, not a result.

use rvz_bench::json::Json;
use rvz_bench::{flag_from_args, flag_value_from_args};
use rvz_emu::Runner;
use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
use rvz_isa::{DecodedProgram, Input, TestCase};
use rvz_model::{Contract, ContractModel};
use rvz_uarch::{CpuUnderTest, RunOptions};
use std::time::{Duration, Instant};

const HELP: &str = "emu_throughput: write the emulator inner-loop perf trajectory to BENCH_emu.json

usage: emu_throughput [options]

  --out=PATH       output file (default BENCH_emu.json)
  --programs=N     generated programs per section (default 8)
  --reps=N         timed repetitions of the whole workload (default: per-section)
  -h, --help       this text
";

/// Number of inputs per generated program.
const INPUTS: usize = 8;
/// Generator shape: matches the campaign default (4 blocks, 12 instructions).
const BLOCKS: usize = 4;
const INSTRUCTIONS: usize = 12;
/// Workload seed.
const SEED: u64 = 29;

/// The generated workload: programs from the target-8 row (full instruction
/// set, conditional branches, store bypass, microcode assists) so every
/// speculation mechanism is on the timed path.
fn workload() -> (Vec<(TestCase, Vec<Input>)>, revizor::targets::Target) {
    let target = revizor::targets::Target::target8();
    let programs = flag_value_from_args::<usize>("--programs").unwrap_or(8);
    let generator = ProgramGenerator::new(
        GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(BLOCKS)
            .with_instructions(INSTRUCTIONS),
    );
    let cases = (0..programs as u64)
        .map(|i| {
            let tc = generator.generate(SEED + i);
            let inputs = InputGenerator::new(4).generate(&tc, SEED ^ (i + 1), INPUTS);
            (tc, inputs)
        })
        .collect();
    (cases, target)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One section's timings rendered the same way as `BENCH_fleet.json`'s
/// `fleet_speedup`: instructions per timed pass, before/after wall-clock,
/// instructions per second for each side, and the ratio.
fn section(instructions: u64, reference: Duration, decoded: Duration, checksum: u64) -> Json {
    Json::obj()
        .field("instructions", instructions)
        .field("reference_ms", ms(reference))
        .field("decoded_ms", ms(decoded))
        .field("reference_instr_per_sec", instructions as f64 / reference.as_secs_f64())
        .field("decoded_instr_per_sec", instructions as f64 / decoded.as_secs_f64())
        .field("speedup", reference.as_secs_f64() / decoded.as_secs_f64())
        .field("checksum", checksum)
}

/// Architectural runner: the plain (non-speculative) interpreter loop.
///
/// The decoded side is timed in its zero-cost-tracer configuration
/// ([`Runner::run_final_decoded`], `NoTrace` sink): every in-tree production
/// consumer of the architectural runner only needs the fault outcome or the
/// final state, and the reference interpreter has no way to skip its
/// per-step trace bookkeeping — that asymmetry is the point of the
/// monomorphized sink.  The full-`ExecTrace` decoded walk is reported
/// alongside as `decoded_trace_ms`.
fn bench_arch(cases: &[(TestCase, Vec<Input>)], reps: usize) -> (Json, bool) {
    // Correctness pass: both trace-building paths agree on every step, block
    // and the final architectural state, the trace-free pass agrees on the
    // final state, and the per-pass instruction count is recorded.
    let mut identical = true;
    let mut instructions = 0u64;
    for (tc, inputs) in cases {
        let prog = DecodedProgram::decode(tc).expect("generated programs decode");
        for input in inputs {
            let quiet = Runner::run_final_decoded(&prog, input, 4096);
            match (Runner::new(tc).run(input), Runner::new(tc).run_reference(input)) {
                (Ok(d), Ok(r)) => {
                    identical &= d.steps == r.steps
                        && d.block_order == r.block_order
                        && d.final_state == r.final_state
                        && quiet.as_ref().ok() == Some(&r.final_state);
                    instructions += d.len() as u64;
                }
                (Err(d), Err(r)) => identical &= d == r && quiet.as_ref().err() == Some(&r),
                _ => identical = false,
            }
        }
    }

    let mut checksum = 0u64;
    let reference_start = Instant::now();
    for _ in 0..reps {
        for (tc, inputs) in cases {
            let runner = Runner::new(tc);
            for input in inputs {
                if let Ok(trace) = runner.run_reference(input) {
                    checksum = checksum.wrapping_add(trace.final_state.reg(rvz_isa::Reg::Rax));
                }
            }
        }
    }
    let reference = reference_start.elapsed();

    let trace_start = Instant::now();
    // Decode charged here, once per program — exactly how the executor and
    // campaign pay for it (decoded once, reused across reps and inputs).
    let programs: Vec<DecodedProgram> = cases
        .iter()
        .map(|(tc, _)| DecodedProgram::decode(tc).expect("generated programs decode"))
        .collect();
    for _ in 0..reps {
        for (prog, (_, inputs)) in programs.iter().zip(cases) {
            for input in inputs {
                if let Ok(trace) = Runner::run_decoded(prog, input, 4096) {
                    checksum = checksum.wrapping_add(trace.final_state.reg(rvz_isa::Reg::Rax));
                }
            }
        }
    }
    let decoded_trace = trace_start.elapsed();

    let decoded_start = Instant::now();
    for _ in 0..reps {
        for (prog, (_, inputs)) in programs.iter().zip(cases) {
            for input in inputs {
                if let Ok(state) = Runner::run_final_decoded(prog, input, 4096) {
                    checksum = checksum.wrapping_add(state.reg(rvz_isa::Reg::Rax));
                }
            }
        }
    }
    let decoded = decoded_start.elapsed();

    let json = section(instructions * reps as u64, reference, decoded, checksum)
        .field("decoded_trace_ms", ms(decoded_trace));
    (json, identical)
}

/// Contract model: ctrace collection under CT-COND-BPAS with nested
/// speculation — the heaviest contract the campaign runs, and the loop where
/// delta checkpoints replace a full `ArchState` clone per episode.
fn bench_model(cases: &[(TestCase, Vec<Input>)], reps: usize) -> (Json, bool) {
    let model = ContractModel::new(Contract::ct_cond_bpas().with_nesting(true));

    let mut identical = true;
    let mut instructions = 0u64;
    for (tc, inputs) in cases {
        for input in inputs {
            identical &= model.collect(tc, input) == model.collect_reference(tc, input);
            if let Ok(trace) = Runner::new(tc).run(input) {
                instructions += trace.len() as u64;
            }
        }
    }

    let mut checksum = 0u64;
    let reference_start = Instant::now();
    for _ in 0..reps {
        for (tc, inputs) in cases {
            for input in inputs {
                if let Ok(out) = model.collect_reference(tc, input) {
                    checksum = checksum.wrapping_add(out.trace.digest());
                }
            }
        }
    }
    let reference = reference_start.elapsed();

    let decoded_start = Instant::now();
    let programs: Vec<DecodedProgram> = cases
        .iter()
        .map(|(tc, _)| DecodedProgram::decode(tc).expect("generated programs decode"))
        .collect();
    for _ in 0..reps {
        for (prog, (_, inputs)) in programs.iter().zip(cases) {
            for input in inputs {
                if let Ok(out) = model.collect_decoded(prog, input) {
                    checksum = checksum.wrapping_add(out.trace.digest());
                }
            }
        }
    }
    let decoded = decoded_start.elapsed();

    (section(instructions * reps as u64, reference, decoded, checksum), identical)
}

/// Speculative CPU: the executor's hot loop, with microcode assists enabled
/// (the target-8 measurement mode) and persistent predictor state across the
/// input sequence, exactly like priming.
fn bench_uarch(
    cases: &[(TestCase, Vec<Input>)],
    target: &revizor::targets::Target,
    reps: usize,
) -> (Json, bool) {
    let opts = RunOptions { enable_assists: target.mode.assists };

    let mut identical = true;
    let mut instructions = 0u64;
    {
        let mut dec_cpu = target.cpu();
        let mut ref_cpu = target.cpu();
        for (tc, inputs) in cases {
            dec_cpu.reset_uarch();
            ref_cpu.reset_uarch();
            for input in inputs {
                let d = dec_cpu.run(tc, input, &opts);
                let r = ref_cpu.run_reference(tc, input, &opts);
                identical &= d == r;
                if let Ok(out) = d {
                    instructions += out.executed_instructions as u64;
                }
            }
            identical &= dec_cpu.cache() == ref_cpu.cache();
        }
    }

    let mut checksum = 0u64;
    let mut cpu = target.cpu();
    let reference_start = Instant::now();
    for _ in 0..reps {
        for (tc, inputs) in cases {
            cpu.reset_uarch();
            for input in inputs {
                if let Ok(out) = cpu.run_reference(tc, input, &opts) {
                    checksum = checksum.wrapping_add(out.final_state_digest);
                }
            }
        }
    }
    let reference = reference_start.elapsed();

    let mut cpu = target.cpu();
    let decoded_start = Instant::now();
    let programs: Vec<DecodedProgram> = cases
        .iter()
        .map(|(tc, _)| DecodedProgram::decode(tc).expect("generated programs decode"))
        .collect();
    for _ in 0..reps {
        for (prog, (_, inputs)) in programs.iter().zip(cases) {
            cpu.reset_uarch();
            for input in inputs {
                if let Ok(out) = cpu.run_decoded(prog, input, &opts) {
                    checksum = checksum.wrapping_add(out.final_state_digest);
                }
            }
        }
    }
    let decoded = decoded_start.elapsed();

    (section(instructions * reps as u64, reference, decoded, checksum), identical)
}

fn main() {
    if flag_from_args("--help") || flag_from_args("-h") {
        print!("{HELP}");
        return;
    }
    let out =
        flag_value_from_args::<String>("--out").unwrap_or_else(|| "BENCH_emu.json".to_string());
    let reps_override = flag_value_from_args::<usize>("--reps");

    let (cases, target) = workload();
    let programs = cases.len();

    // Per-section repetition counts sized so each timed pass is long enough
    // to be stable on a shared machine (the uarch loop does far more work
    // per instruction than the plain runner).
    let arch_reps = reps_override.unwrap_or(400);
    let model_reps = reps_override.unwrap_or(200);
    let uarch_reps = reps_override.unwrap_or(60);

    eprintln!("emu_throughput: timing the architectural runner...");
    let (arch, arch_ok) = bench_arch(&cases, arch_reps);
    eprintln!("emu_throughput: timing the contract model (CT-COND-BPAS, nested)...");
    let (model, model_ok) = bench_model(&cases, model_reps);
    eprintln!("emu_throughput: timing the speculative CPU ({})...", target.cpu().name());
    let (uarch, uarch_ok) = bench_uarch(&cases, &target, uarch_reps);

    let identical = arch_ok && model_ok && uarch_ok;
    assert!(
        identical,
        "decoded loop diverged from the reference interpreter \
         (arch={arch_ok} model={model_ok} uarch={uarch_ok})"
    );

    let doc = Json::obj()
        .field("bench", "emu")
        .field(
            "workload",
            Json::obj()
                .field("programs", programs as u64)
                .field("inputs_per_program", INPUTS as u64)
                .field("blocks", BLOCKS as u64)
                .field("instructions_per_program", INSTRUCTIONS as u64)
                .field("seed", SEED)
                .field("target", target.cpu().name())
                .field("arch_reps", arch_reps as u64)
                .field("model_reps", model_reps as u64)
                .field("uarch_reps", uarch_reps as u64),
        )
        .field("arch", arch)
        .field("model", model)
        .field("uarch", uarch)
        .field("verdicts_identical", identical);
    std::fs::write(&out, format!("{}\n", doc.render_pretty())).expect("bench file written");
    eprintln!("emu_throughput: wrote {out}");
    println!("{}", doc.render_pretty());
}
