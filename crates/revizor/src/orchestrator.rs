//! Multi-campaign orchestration: fuzz a whole matrix of (target, contract)
//! cells — e.g. the paper's Table 3 — over **one** shared worker pool, with
//! cross-contract trace sharing.
//!
//! Hardware traces depend only on (target, test case, inputs), never on the
//! contract, so all cells that test the same target form a *cell group*
//! that shares a single test-case stream: each test case is generated once,
//! measured once ([`Executor::collect_htraces`]), and the collected traces
//! are checked against every contract of the group
//! ([`campaign::evaluate_slate`]).  Since measurement dominates the cost of
//! a test case, a four-contract group costs barely more than a single
//! campaign:
//!
//! ```text
//!   CampaignMatrix ──┬── group(Target 1) ─ stream: tc₀ tc₁ tc₂ … ──► CT-SEQ
//!                    │                       (htraces shared)    ├─► CT-BPAS
//!                    │                                           ├─► CT-COND
//!                    │                                           └─► CT-COND-BPAS
//!                    ├── group(Target 2) ─ stream: tc₀ tc₁ … ────► …
//!                    ┆
//!                    └──────────── one shared rayon pool ───────────────────
//! ```
//!
//! The scheduler interleaves (group, round) work units over the shared
//! pool.  Each unit is a pure function of `(target, configuration, seed)`
//! with the seed derived from `(matrix seed, target id, test-case index)`
//! alone, so:
//!
//! * results are identical for any `parallelism`, and
//! * a cell's verdict never changes when other cells are added to or
//!   removed from the matrix (per-contract outcomes are independent of the
//!   slate's composition — see the [`campaign`] module docs).
//!
//! Every cell stops early at its first confirmed violation; a group keeps
//! running until all of its cells have stopped or the per-group test-case
//! budget is exhausted.
//!
//! # Incremental driving and checkpoints
//!
//! [`CampaignMatrix::start`] returns a [`MatrixRun`]: the matrix as a
//! resumable state machine.  [`MatrixRun::step`] evaluates one scheduling
//! wave (one round per unfinished group); [`MatrixRun::checkpoint`]
//! snapshots all progress into a plain-data [`MatrixCheckpoint`], and
//! [`CampaignMatrix::resume`] reconstructs the run from such a snapshot.
//! Because every work unit's seed derives from `(matrix seed, target id,
//! index)` alone, a resumed run replays the *identical* stream suffix: the
//! verdicts of an interrupted-and-resumed matrix are byte-identical to an
//! uninterrupted one (only wall-clock fields differ).  The campaign service
//! (`rvz-service`) persists these checkpoints to its spool between waves.
//!
//! # Diversity escalation
//!
//! By default cell groups run a **fixed** generator configuration (the
//! mid-campaign parameters the detection harnesses use).  With
//! [`CampaignMatrix::with_escalation`] the §5.6 diversity feedback drives
//! each group: pattern coverage is measured on a dedicated CT-SEQ *coverage
//! probe* appended to every slate, so the escalation decisions — and with
//! them the shared test-case stream — depend only on the target, never on
//! which contracts happen to share the group.  Composition- and
//! parallelism-invariance are preserved (and tested) in both modes.
//!
//! [`Executor::collect_htraces`]: rvz_executor::Executor::collect_htraces

use crate::campaign::{self, CellEvent, NoopObserver, ProgressObserver, RoundEvent, SeedEval, SlateChecks, SlateSpec};
use crate::classify::{classify, VulnClass};
use crate::diversity::PatternCoverage;
use crate::fuzzer::ViolationReport;
use crate::staticanalysis;
use crate::targets::Target;
use rvz_analyzer::EffectivenessStats;
use rvz_executor::ExecutorConfig;
use rvz_gen::GeneratorConfig;
use rvz_model::{Contract, ExecutionInfo};
use rvz_uarch::SpecCpu;
use std::time::{Duration, Instant};

/// One cell of the testing matrix: a target fuzzed against a contract.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// The target (Table 2 column).
    pub target: Target,
    /// The contract the target is tested against.
    pub contract: Contract,
}

/// The result of one matrix cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's target.
    pub target: Target,
    /// The cell's contract.
    pub contract: Contract,
    /// The first confirmed violation, if any was found within the budget.
    pub violation: Option<ViolationReport>,
    /// Test cases of the group stream evaluated for this cell (up to and
    /// including the violating one, or the whole budget).
    pub test_cases: usize,
    /// Group-stream test cases the static speculation pre-filter discarded
    /// before this cell finished (0 when the filter is off).
    pub filtered: usize,
    /// Inputs executed across those test cases.
    pub total_inputs: usize,
    /// Input-effectiveness statistics summed over the cell's measured test
    /// cases (integer sums; per §5.2 the ratio is
    /// [`EffectivenessStats::effectiveness`]).
    pub effectiveness: EffectivenessStats,
    /// Evaluation time the cell's group had accumulated when this cell
    /// finished: the shared measurement cost attributed to the cell, i.e.
    /// the time an independent campaign for this cell would have needed
    /// *plus* the (small) per-contract analysis shared with its group —
    /// comparable to a per-cell detection time, and independent of how many
    /// *other* groups the matrix interleaves.  Wall clock for the whole
    /// matrix lives in [`MatrixReport::duration`]; wall-clock-since-start
    /// for live display is in [`CellEvent::elapsed`](crate::CellEvent).
    pub detection_time: Duration,
}

impl CellReport {
    /// Did the cell find a confirmed violation?
    pub fn found(&self) -> bool {
        self.violation.is_some()
    }

    /// Classification of the violation, if one was found.
    pub fn vulnerability(&self) -> Option<VulnClass> {
        self.violation.as_ref().map(|v| v.vulnerability)
    }
}

/// Summary of a matrix run.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Per-cell results, in the order the cells were added.
    pub cells: Vec<CellReport>,
    /// The matrix seed (per-cell streams derive from it, the target id and
    /// the test-case index).
    pub seed: u64,
    /// Unique (target, test case) evaluations across all cell groups — the
    /// measurement work actually performed.  The per-cell `test_cases`
    /// counters sum to more than this whenever groups share traces.
    pub test_cases: usize,
    /// Test cases generated across all cell groups, including ones the
    /// static pre-filter discarded before measurement.
    pub generated: usize,
    /// Test cases discarded by the static speculation pre-filter across all
    /// cell groups (0 when the filter is off).
    pub statically_filtered: usize,
    /// Wall-clock duration of the whole matrix run (of the final segment
    /// only, if the run was checkpoint-resumed).
    pub duration: Duration,
}

impl MatrixReport {
    /// The report of the cell for `(target_id, contract)`, if present.
    pub fn cell(&self, target_id: u8, contract: &Contract) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.target.id == target_id && c.contract == *contract)
    }
}

/// Checkpointed progress of one matrix cell (plain data, serializable by
/// `rvz_bench::report`).
#[derive(Debug, Clone, PartialEq)]
pub struct CellProgress {
    /// The confirmed violation that finished the cell.
    pub violation: Option<ViolationReport>,
    /// Test cases evaluated for the cell when it finished.
    pub test_cases: usize,
    /// Statically pre-filtered group-stream test cases when the cell
    /// finished.
    pub filtered: usize,
    /// Inputs executed across those test cases.
    pub total_inputs: usize,
    /// Summed input-effectiveness statistics of the cell's measured test
    /// cases.
    pub effectiveness: EffectivenessStats,
    /// Attributed group evaluation time when the cell finished.
    pub detection_time: Duration,
}

/// Checkpointed progress of one cell group (one target's shared stream).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupProgress {
    /// Table 2 id of the group's target.
    pub target_id: u8,
    /// Next test-case index of the group stream.
    pub next_index: usize,
    /// Test cases evaluated so far.
    pub test_cases: usize,
    /// Test cases the static speculation pre-filter discarded so far.
    pub filtered: usize,
    /// Inputs executed so far.
    pub total_inputs: usize,
    /// Per-cell summed input-effectiveness statistics, indexed like the
    /// group's cells (discovery order); unfinished cells keep accumulating
    /// after a resume.  Empty in checkpoints taken before this field
    /// existed.
    pub effectiveness: Vec<EffectivenessStats>,
    /// Completed rounds.
    pub round: usize,
    /// Accumulated unit-evaluation time.
    pub work: Duration,
    /// Generator escalations so far (§5.6; 0 unless
    /// [`CampaignMatrix::with_escalation`] is on).
    pub escalations: usize,
    /// Current coverage goal level (1 = single patterns, 2+ = pairs).
    pub coverage_level: usize,
    /// Did coverage improve within the current round window?
    pub round_improved: bool,
    /// Accumulated pattern coverage of the group's coverage probe.
    pub coverage: PatternCoverage,
}

/// A resumable snapshot of a [`MatrixRun`]: everything needed to continue
/// an interrupted matrix with byte-identical verdicts.  Produced by
/// [`MatrixRun::checkpoint`], consumed by [`CampaignMatrix::resume`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCheckpoint {
    /// Completed scheduling waves ([`MatrixRun::step`] calls that did
    /// work).  Purely informational for resume; the multi-host campaign
    /// service keys checkpoint replication by it (wave numbers of one job
    /// must arrive strictly increasing at the coordinator).
    pub wave: usize,
    /// The matrix seed (validated on resume).
    pub seed: u64,
    /// The per-group budget (validated on resume).
    pub budget: usize,
    /// The scheduling round size (validated on resume).
    pub round_size: usize,
    /// Whether diversity escalation was enabled (validated on resume).
    pub escalation: bool,
    /// Digest of everything else the stream depends on — generator size,
    /// inputs per test case, repetitions, placement bias and the full
    /// (target, contract) cell list (validated on resume; resuming under a
    /// different configuration would silently break the byte-identical
    /// guarantee).
    pub config_digest: u64,
    /// Per-cell progress, indexed like [`CampaignMatrix::cells`]; `Some`
    /// for cells that already finished (found a violation).
    pub cells: Vec<Option<CellProgress>>,
    /// Per-group stream progress, in group discovery order.
    pub groups: Vec<GroupProgress>,
}

impl MatrixCheckpoint {
    /// A stable digest over **every** field of the checkpoint, for
    /// validating checkpoint replication across process boundaries: a
    /// worker host digests its snapshot before encoding it onto the wire,
    /// the coordinator re-digests the decoded snapshot, and a mismatch
    /// means the transfer codec dropped or distorted state (which would
    /// silently break the byte-identical resume guarantee).
    ///
    /// The digest is FNV-1a over the checkpoint's `Debug` rendering: total
    /// (new fields are covered automatically) and deterministic across
    /// processes of the same build — every constituent container is
    /// order-stable (`Vec`/`BTreeSet`), and there are no hash-ordered
    /// collections anywhere in the tree.  It is **not** meant to be stable
    /// across versions of this crate; both ends of a transfer must run the
    /// same build, which the campaign service's deployment story (one
    /// workspace, one binary pair) already guarantees.
    pub fn digest(&self) -> u64 {
        /// Folds formatted bytes straight into FNV-1a — checkpoints with
        /// violation reports render to hundreds of KB of `Debug` output,
        /// and this runs twice per wave (sender and receiver), so never
        /// materialize the string.
        struct FnvWriter(u64);
        impl std::fmt::Write for FnvWriter {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for b in s.bytes() {
                    self.0 ^= u64::from(b);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
                Ok(())
            }
        }
        let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
        use std::fmt::Write;
        write!(w, "{self:?}").expect("FnvWriter never fails");
        w.0
    }
}

/// Orchestrates a matrix of fuzzing campaigns over one shared worker pool
/// with cross-contract trace sharing (see the module docs).
///
/// # Example
///
/// ```no_run
/// use revizor::orchestrator::CampaignMatrix;
///
/// // Regenerate Table 3: 8 targets × 4 CT-* contracts over one pool.
/// let report = CampaignMatrix::table3(3).with_budget(200).with_parallelism(4).run();
/// for cell in &report.cells {
///     println!("Target {} × {}: {}", cell.target.id, cell.contract, cell.found());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CampaignMatrix {
    cells: Vec<MatrixCell>,
    seed: u64,
    budget: usize,
    round_size: usize,
    parallelism: usize,
    inputs_per_test_case: usize,
    repetitions: usize,
    basic_blocks: usize,
    instructions: usize,
    branch_then_load_bias: bool,
    escalation: bool,
    speculation_filter: bool,
}

impl CampaignMatrix {
    /// An empty matrix.  The defaults mirror the detection harnesses of
    /// §6.5: mid-campaign generator parameters (4 basic blocks, 14
    /// instructions, 20 inputs per test case), fast executor settings
    /// (2 repetitions), a budget of 200 test cases per cell group, rounds
    /// of 10, a single worker thread, and no diversity escalation.
    pub fn new(seed: u64) -> CampaignMatrix {
        CampaignMatrix {
            cells: Vec::new(),
            seed,
            budget: 200,
            round_size: 10,
            parallelism: 1,
            inputs_per_test_case: 20,
            repetitions: 2,
            basic_blocks: 4,
            instructions: 14,
            branch_then_load_bias: true,
            escalation: false,
            speculation_filter: false,
        }
    }

    /// The full Table 3 matrix: every target of Table 2 against every CT-*
    /// contract.
    pub fn table3(seed: u64) -> CampaignMatrix {
        let mut matrix = CampaignMatrix::new(seed);
        for target in Target::all() {
            for contract in Contract::table3_contracts() {
                matrix = matrix.add_cell(target.clone(), contract);
            }
        }
        matrix
    }

    /// The extended Table 3 matrix: the Table 2 targets plus the predictor
    /// zoo (TAGE / loop-predictor fuzzing targets and the scenario-pinned
    /// BTB-aliasing, deep-RSB and predictor-state cells), each against
    /// every CT-* contract.  The first 32 cells are exactly [`Self::table3`],
    /// so the classic verdicts are unchanged.
    pub fn table3_zoo(seed: u64) -> CampaignMatrix {
        let mut matrix = CampaignMatrix::new(seed);
        for target in Target::catalog() {
            for contract in Contract::table3_contracts() {
                matrix = matrix.add_cell(target.clone(), contract);
            }
        }
        matrix
    }

    /// Add one (target, contract) cell.  Cells of the same target share one
    /// test-case stream and its hardware traces.
    pub fn add_cell(mut self, target: Target, contract: Contract) -> CampaignMatrix {
        self.cells.push(MatrixCell { target, contract });
        self
    }

    /// Add one target against several contracts.
    pub fn add_cells(
        mut self,
        target: Target,
        contracts: impl IntoIterator<Item = Contract>,
    ) -> CampaignMatrix {
        for contract in contracts {
            self = self.add_cell(target.clone(), contract);
        }
        self
    }

    /// Builder: maximum test cases per cell group.
    pub fn with_budget(mut self, budget: usize) -> CampaignMatrix {
        self.budget = budget.max(1);
        self
    }

    /// Builder: test cases per scheduling round.
    pub fn with_round_size(mut self, round_size: usize) -> CampaignMatrix {
        self.round_size = round_size.max(1);
        self
    }

    /// Builder: worker threads of the shared pool (`0` and `1` both mean
    /// single-threaded).  Results are identical for any value.
    pub fn with_parallelism(mut self, parallelism: usize) -> CampaignMatrix {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder: inputs generated per test case.
    pub fn with_inputs_per_test_case(mut self, n: usize) -> CampaignMatrix {
        self.inputs_per_test_case = n.max(2);
        self
    }

    /// Builder: measurement repetitions per input sequence.
    pub fn with_repetitions(mut self, repetitions: usize) -> CampaignMatrix {
        self.repetitions = repetitions.max(1);
        self
    }

    /// Builder: generator size parameters (basic blocks, instructions).
    pub fn with_generator_size(mut self, basic_blocks: usize, instructions: usize) -> CampaignMatrix {
        self.basic_blocks = basic_blocks.max(1);
        self.instructions = instructions;
        self
    }

    /// Builder: enable or disable the branch-then-load placement bias of
    /// the generator (on by default — see
    /// [`GeneratorConfig::branch_then_load_bias`]).
    pub fn with_branch_then_load_bias(mut self, bias: bool) -> CampaignMatrix {
        self.branch_then_load_bias = bias;
        self
    }

    /// Builder: enable the §5.6 diversity escalation for every cell group
    /// (off by default).  Escalation decisions are driven by a CT-SEQ
    /// coverage probe shared by the whole group, so a group's test-case
    /// stream stays independent of which contracts it contains and of the
    /// worker-pool size; [`RoundEvent::escalations`] reports the true
    /// per-group count either way.
    pub fn with_escalation(mut self, escalation: bool) -> CampaignMatrix {
        self.escalation = escalation;
        self
    }

    /// Builder: enable the static speculation pre-filter (off by default).
    /// Statically-leak-impossible test cases are discarded before the model
    /// and hardware measurements; the filter is sound, so every cell's
    /// verdict (and violating test case) is unchanged — only the number of
    /// *measured* test cases shrinks.  Filtered seeds still consume stream
    /// indices, so the shared streams stay aligned with the unfiltered run.
    pub fn with_speculation_filter(mut self, enabled: bool) -> CampaignMatrix {
        self.speculation_filter = enabled;
        self
    }

    /// The cells added so far.
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// The matrix seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Digest of the verdict-relevant configuration beyond
    /// seed/budget/round size: the measurement and generator parameters and
    /// the exact cell list.  A checkpoint only resumes on a matrix with the
    /// same digest.
    fn config_digest(&self) -> u64 {
        let mut desc = format!(
            "{}|{}|{}|{}|{}",
            self.inputs_per_test_case,
            self.repetitions,
            self.basic_blocks,
            self.instructions,
            self.branch_then_load_bias,
        );
        // Appended only when enabled so checkpoints taken before the filter
        // existed keep their digest.
        if self.speculation_filter {
            desc.push_str("|speculation_filter");
        }
        for cell in &self.cells {
            use std::fmt::Write;
            let _ = write!(
                desc,
                "|{}#{}:{}:{}",
                cell.target,
                cell.contract.name(),
                cell.contract.speculation_window,
                cell.contract.nested_speculation,
            );
        }
        // FNV-1a: stable across processes and platforms (checkpoints cross
        // process boundaries through the service spool).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in desc.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The initial generator configuration of a cell group (escalation, if
    /// enabled, grows a group-local copy of this).
    fn base_generator(&self, target: &Target) -> GeneratorConfig {
        let mut generator = GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(self.basic_blocks)
            .with_instructions(self.instructions)
            .with_branch_then_load_bias(self.branch_then_load_bias);
        generator.inputs_per_test_case = self.inputs_per_test_case;
        // Scenario-pinned targets fuzz input streams over a fixed gadget;
        // the scenario also appears in the target's Display form, so it is
        // already part of the config digest.
        generator.scenario = target.scenario.clone();
        generator
    }

    /// Group the matrix cells by target, in discovery order.
    fn build_groups(&self) -> Vec<Group> {
        let mut groups: Vec<Group> = Vec::new();
        for (cell_idx, cell) in self.cells.iter().enumerate() {
            let gc = GroupCell {
                cell_idx,
                contract: cell.contract.clone(),
                effectiveness: EffectivenessStats::default(),
                report: None,
            };
            match groups.iter_mut().find(|g| g.target == cell.target) {
                Some(g) => g.cells.push(gc),
                None => groups.push(Group {
                    generator: self.base_generator(&cell.target),
                    target: cell.target.clone(),
                    cells: vec![gc],
                    next_index: 0,
                    test_cases: 0,
                    filtered: 0,
                    total_inputs: 0,
                    round: 0,
                    work: Duration::ZERO,
                    coverage: PatternCoverage::new(),
                    coverage_level: 1,
                    round_improved: false,
                    escalations: 0,
                }),
            }
        }
        groups
    }

    /// Start an incremental run of the matrix (see [`MatrixRun`]).
    pub fn start(&self) -> MatrixRun<'_> {
        MatrixRun::with_groups(self, self.build_groups())
    }

    /// Resume an incremental run from a [`MatrixCheckpoint`].  The
    /// checkpoint must come from a matrix with the same seed, budget,
    /// round size, escalation mode and cell list; the resumed run replays
    /// the identical stream suffix, so its verdicts are byte-identical to
    /// an uninterrupted run.
    ///
    /// # Errors
    /// Returns a message when the checkpoint does not match this matrix.
    pub fn resume(&self, checkpoint: &MatrixCheckpoint) -> Result<MatrixRun<'_>, String> {
        if checkpoint.seed != self.seed {
            return Err(format!(
                "checkpoint seed {} does not match matrix seed {}",
                checkpoint.seed, self.seed
            ));
        }
        if checkpoint.budget != self.budget || checkpoint.round_size != self.round_size {
            return Err("checkpoint budget/round size does not match the matrix".to_string());
        }
        if checkpoint.escalation != self.escalation {
            return Err("checkpoint escalation mode does not match the matrix".to_string());
        }
        if checkpoint.config_digest != self.config_digest() {
            return Err(
                "checkpoint configuration (generator/measurement parameters or cell list) \
                 does not match the matrix"
                    .to_string(),
            );
        }
        if checkpoint.cells.len() != self.cells.len() {
            return Err(format!(
                "checkpoint has {} cells, matrix has {}",
                checkpoint.cells.len(),
                self.cells.len()
            ));
        }
        let mut groups = self.build_groups();
        if checkpoint.groups.len() != groups.len() {
            return Err(format!(
                "checkpoint has {} groups, matrix has {}",
                checkpoint.groups.len(),
                groups.len()
            ));
        }
        for (group, progress) in groups.iter_mut().zip(&checkpoint.groups) {
            if group.target.id != progress.target_id {
                return Err(format!(
                    "checkpoint group targets {} where the matrix has {}",
                    progress.target_id, group.target.id
                ));
            }
            group.next_index = progress.next_index;
            group.test_cases = progress.test_cases;
            group.filtered = progress.filtered;
            group.total_inputs = progress.total_inputs;
            // Per-cell effectiveness sums (empty in pre-filter checkpoints,
            // which never carried them — the sums then restart from zero,
            // matching what such a checkpoint's writer reported).
            if progress.effectiveness.len() == group.cells.len() {
                for (gc, eff) in group.cells.iter_mut().zip(&progress.effectiveness) {
                    gc.effectiveness = *eff;
                }
            }
            group.round = progress.round;
            group.work = progress.work;
            group.coverage = progress.coverage.clone();
            group.coverage_level = progress.coverage_level;
            group.round_improved = progress.round_improved;
            group.escalations = progress.escalations;
            // `GeneratorConfig::escalate` is a pure function of the
            // configuration, so replaying it recovers the exact generator
            // state the checkpointed run had reached.
            for _ in 0..progress.escalations {
                group.generator.escalate();
            }
            for gc in &mut group.cells {
                if let Some(progress) = checkpoint.cells[gc.cell_idx].as_ref() {
                    gc.report = Some(CellReport {
                        target: group.target.clone(),
                        contract: gc.contract.clone(),
                        violation: progress.violation.clone(),
                        test_cases: progress.test_cases,
                        filtered: progress.filtered,
                        total_inputs: progress.total_inputs,
                        effectiveness: progress.effectiveness,
                        detection_time: progress.detection_time,
                    });
                }
            }
        }
        let mut run = MatrixRun::with_groups(self, groups);
        run.wave = checkpoint.wave;
        Ok(run)
    }

    /// The matrix's cell groups as full-matrix cell indices, one entry per
    /// target in discovery order (the same order [`Self::build_groups`]
    /// produces and checkpoints record).
    fn group_layout(&self) -> Vec<(Target, Vec<usize>)> {
        let mut layout: Vec<(Target, Vec<usize>)> = Vec::new();
        for (idx, cell) in self.cells.iter().enumerate() {
            match layout.iter_mut().find(|(target, _)| *target == cell.target) {
                Some((_, indices)) => indices.push(idx),
                None => layout.push((cell.target.clone(), vec![idx])),
            }
        }
        layout
    }

    /// Split the matrix into one single-group sub-matrix per target, in
    /// group discovery order.  Each sub-matrix carries the same seed,
    /// budget and configuration, so its work units draw the *identical*
    /// seeds the full matrix would schedule for that group
    /// ([`unit_seed`] depends only on the matrix seed, the target id and
    /// the stream index) — sub-runs are relocatable across hosts by
    /// construction.  Drive them independently (possibly on different
    /// machines), then recombine with [`Self::merge_checkpoints`] /
    /// [`Self::merge_reports`].
    pub fn group_matrices(&self) -> Vec<CampaignMatrix> {
        self.group_layout()
            .into_iter()
            .map(|(_, indices)| {
                let mut sub = self.clone();
                sub.cells = indices.iter().map(|&i| self.cells[i].clone()).collect();
                sub
            })
            .collect()
    }

    /// The checkpoint of a run that has not stepped yet: wave 0, no
    /// progress.  Useful to stand in for sub-runs that have not started
    /// when merging partial fleet progress into a full-matrix checkpoint.
    pub fn initial_checkpoint(&self) -> MatrixCheckpoint {
        MatrixCheckpoint {
            wave: 0,
            seed: self.seed,
            budget: self.budget,
            round_size: self.round_size,
            escalation: self.escalation,
            config_digest: self.config_digest(),
            cells: self.cells.iter().map(|_| None).collect(),
            groups: self
                .build_groups()
                .iter()
                .map(|g| GroupProgress {
                    target_id: g.target.id,
                    next_index: 0,
                    test_cases: 0,
                    filtered: 0,
                    total_inputs: 0,
                    effectiveness: g.cells.iter().map(|_| EffectivenessStats::default()).collect(),
                    round: 0,
                    work: Duration::ZERO,
                    escalations: 0,
                    coverage_level: 1,
                    round_improved: false,
                    coverage: PatternCoverage::new(),
                })
                .collect(),
        }
    }

    /// Split a full-matrix checkpoint into one single-group checkpoint per
    /// target, each resumable on the corresponding [`Self::group_matrices`]
    /// sub-matrix.  A sub-checkpoint's `wave` is its group's completed
    /// round count — exactly the wave count a standalone single-group run
    /// would have reached, since every wave of a single-group run is one
    /// round of its only group.
    ///
    /// # Errors
    /// Returns a message when the checkpoint does not match this matrix
    /// (same validation as [`Self::resume`]).
    pub fn split_checkpoint(
        &self,
        checkpoint: &MatrixCheckpoint,
    ) -> Result<Vec<MatrixCheckpoint>, String> {
        if checkpoint.seed != self.seed {
            return Err(format!(
                "checkpoint seed {} does not match matrix seed {}",
                checkpoint.seed, self.seed
            ));
        }
        if checkpoint.budget != self.budget || checkpoint.round_size != self.round_size {
            return Err("checkpoint budget/round size does not match the matrix".to_string());
        }
        if checkpoint.escalation != self.escalation {
            return Err("checkpoint escalation mode does not match the matrix".to_string());
        }
        if checkpoint.config_digest != self.config_digest() {
            return Err("checkpoint configuration does not match the matrix".to_string());
        }
        if checkpoint.cells.len() != self.cells.len() {
            return Err(format!(
                "checkpoint has {} cells, matrix has {}",
                checkpoint.cells.len(),
                self.cells.len()
            ));
        }
        let layout = self.group_layout();
        if checkpoint.groups.len() != layout.len() {
            return Err(format!(
                "checkpoint has {} groups, matrix has {}",
                checkpoint.groups.len(),
                layout.len()
            ));
        }
        let subs = self.group_matrices();
        layout
            .iter()
            .zip(&subs)
            .zip(&checkpoint.groups)
            .map(|(((target, indices), sub), progress)| {
                if target.id != progress.target_id {
                    return Err(format!(
                        "checkpoint group targets {} where the matrix has {}",
                        progress.target_id, target.id
                    ));
                }
                Ok(MatrixCheckpoint {
                    wave: progress.round,
                    seed: self.seed,
                    budget: self.budget,
                    round_size: self.round_size,
                    escalation: self.escalation,
                    config_digest: sub.config_digest(),
                    cells: indices.iter().map(|&i| checkpoint.cells[i].clone()).collect(),
                    groups: vec![progress.clone()],
                })
            })
            .collect()
    }

    /// Merge per-group sub-checkpoints (one per [`Self::group_matrices`]
    /// sub-matrix, in group order) back into a full-matrix checkpoint
    /// resumable on this matrix.  The merged `wave` is the sum of the
    /// sub-run waves (purely informational, like the field itself).
    /// Inverse of [`Self::split_checkpoint`]; sub-runs may have progressed
    /// unevenly in between.
    ///
    /// # Errors
    /// Returns a message when the parts do not match this matrix's groups.
    pub fn merge_checkpoints(
        &self,
        parts: &[MatrixCheckpoint],
    ) -> Result<MatrixCheckpoint, String> {
        let layout = self.group_layout();
        if parts.len() != layout.len() {
            return Err(format!(
                "{} sub-checkpoints for a matrix with {} groups",
                parts.len(),
                layout.len()
            ));
        }
        let subs = self.group_matrices();
        let mut cells: Vec<Option<CellProgress>> = self.cells.iter().map(|_| None).collect();
        let mut groups = Vec::with_capacity(parts.len());
        let mut wave = 0usize;
        for (((target, indices), sub), part) in layout.iter().zip(&subs).zip(parts) {
            if part.seed != self.seed
                || part.budget != self.budget
                || part.round_size != self.round_size
                || part.escalation != self.escalation
            {
                return Err(format!(
                    "sub-checkpoint for target {} does not match the matrix configuration",
                    target.id
                ));
            }
            if part.config_digest != sub.config_digest() {
                return Err(format!(
                    "sub-checkpoint configuration for target {} does not match its group",
                    target.id
                ));
            }
            match part.groups.as_slice() {
                [group] if group.target_id == target.id => groups.push(group.clone()),
                [group] => {
                    return Err(format!(
                        "sub-checkpoint targets {} where the matrix group is {}",
                        group.target_id, target.id
                    ));
                }
                _ => {
                    return Err(format!(
                        "sub-checkpoint for target {} has {} groups, expected exactly 1",
                        target.id,
                        part.groups.len()
                    ));
                }
            }
            if part.cells.len() != indices.len() {
                return Err(format!(
                    "sub-checkpoint for target {} has {} cells, its group has {}",
                    target.id,
                    part.cells.len(),
                    indices.len()
                ));
            }
            for (&full_idx, cell) in indices.iter().zip(&part.cells) {
                cells[full_idx] = cell.clone();
            }
            wave += part.wave;
        }
        Ok(MatrixCheckpoint {
            wave,
            seed: self.seed,
            budget: self.budget,
            round_size: self.round_size,
            escalation: self.escalation,
            config_digest: self.config_digest(),
            cells,
            groups,
        })
    }

    /// Merge per-group sub-run reports (one per [`Self::group_matrices`]
    /// sub-matrix, in group order) into the full-matrix report.  Verdict
    /// fields recombine exactly — the shared streams make a group's cells
    /// independent of the rest of the matrix — and the merged wall clock is
    /// the slowest part's (sub-runs execute concurrently on a fleet).
    ///
    /// # Errors
    /// Returns a message when the parts do not match this matrix's groups.
    pub fn merge_reports(&self, parts: Vec<MatrixReport>) -> Result<MatrixReport, String> {
        let layout = self.group_layout();
        if parts.len() != layout.len() {
            return Err(format!(
                "{} sub-reports for a matrix with {} groups",
                parts.len(),
                layout.len()
            ));
        }
        let mut slots: Vec<Option<CellReport>> = self.cells.iter().map(|_| None).collect();
        let mut test_cases = 0usize;
        let mut generated = 0usize;
        let mut statically_filtered = 0usize;
        let mut duration = Duration::ZERO;
        for ((target, indices), part) in layout.iter().zip(parts) {
            if part.seed != self.seed {
                return Err(format!(
                    "sub-report seed {} does not match matrix seed {}",
                    part.seed, self.seed
                ));
            }
            if part.cells.len() != indices.len() {
                return Err(format!(
                    "sub-report for target {} has {} cells, its group has {}",
                    target.id,
                    part.cells.len(),
                    indices.len()
                ));
            }
            for (&full_idx, cell) in indices.iter().zip(part.cells) {
                if cell.target.id != target.id {
                    return Err(format!(
                        "sub-report cell targets {} where the matrix group is {}",
                        cell.target.id, target.id
                    ));
                }
                slots[full_idx] = Some(cell);
            }
            test_cases += part.test_cases;
            generated += part.generated;
            statically_filtered += part.statically_filtered;
            duration = duration.max(part.duration);
        }
        Ok(MatrixReport {
            cells: slots.into_iter().map(|s| s.expect("every group slot filled")).collect(),
            seed: self.seed,
            test_cases,
            generated,
            statically_filtered,
            duration,
        })
    }

    /// Run the matrix.
    pub fn run(&self) -> MatrixReport {
        self.run_with_observer(&mut NoopObserver)
    }

    /// Run the matrix, reporting live progress (completed rounds per cell
    /// group, finished cells) to `observer`.  Events are delivered from the
    /// driving thread in deterministic order and do not affect results.
    pub fn run_with_observer(&self, observer: &mut dyn ProgressObserver) -> MatrixReport {
        let mut run = self.start();
        while run.step(observer) {}
        run.finish(observer)
    }
}

/// One cell's slot inside a running group.
struct GroupCell {
    cell_idx: usize,
    contract: Contract,
    /// Summed effectiveness statistics of the cell's measured test cases
    /// (accumulation stops when the cell finishes).
    effectiveness: EffectivenessStats,
    report: Option<CellReport>,
}

/// A cell group mid-run: one target's shared test-case stream and the cells
/// riding it.
struct Group {
    target: Target,
    cells: Vec<GroupCell>,
    next_index: usize,
    test_cases: usize,
    /// Stream test cases the static pre-filter discarded.
    filtered: usize,
    total_inputs: usize,
    round: usize,
    /// Accumulated unit-evaluation time of this group's stream.
    work: Duration,
    /// Group-local generator configuration (grown by escalation).
    generator: GeneratorConfig,
    coverage: PatternCoverage,
    coverage_level: usize,
    round_improved: bool,
    escalations: usize,
}

impl Group {
    fn active_cells(&self) -> Vec<usize> {
        (0..self.cells.len()).filter(|&ci| self.cells[ci].report.is_none()).collect()
    }
}

/// An in-flight matrix run: the incremental (and checkpoint-resumable)
/// form of [`CampaignMatrix::run`].
///
/// ```no_run
/// use revizor::orchestrator::CampaignMatrix;
/// use revizor::campaign::NoopObserver;
///
/// let matrix = CampaignMatrix::table3(3).with_budget(60);
/// let mut run = matrix.start();
/// while run.step(&mut NoopObserver) {
///     let snapshot = run.checkpoint(); // persist between waves
///     let _ = snapshot;
/// }
/// let report = run.finish(&mut NoopObserver);
/// assert_eq!(report.cells.len(), 32);
/// ```
pub struct MatrixRun<'m> {
    matrix: &'m CampaignMatrix,
    groups: Vec<Group>,
    pool: Option<rayon::ThreadPool>,
    start: Instant,
    wave: usize,
}

impl<'m> MatrixRun<'m> {
    fn with_groups(matrix: &'m CampaignMatrix, groups: Vec<Group>) -> MatrixRun<'m> {
        // The one shared pool all groups' work units fan out over, alive
        // for the whole run.
        let pool = (matrix.parallelism > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(matrix.parallelism)
                .build()
                .expect("failed to spawn matrix worker threads")
        });
        MatrixRun { matrix, groups, pool, start: Instant::now(), wave: 0 }
    }

    /// Completed scheduling waves: [`MatrixRun::step`] calls that found
    /// work (resumed runs continue the interrupted run's count).
    pub fn wave(&self) -> usize {
        self.wave
    }

    /// Is there any unfinished cell with remaining budget?
    pub fn has_work(&self) -> bool {
        self.groups.iter().any(|g| {
            g.next_index < self.matrix.budget && g.cells.iter().any(|c| c.report.is_none())
        })
    }

    /// Evaluate one scheduling wave: one round of test cases for every
    /// group that still has unfinished cells and remaining budget.  Returns
    /// `false` once no work remains (the wave was empty).
    ///
    /// Events are delivered to `observer` from the calling thread in
    /// deterministic order.
    pub fn step(&mut self, observer: &mut dyn ProgressObserver) -> bool {
        let matrix = self.matrix;
        let round_size = matrix.round_size.max(1);

        // Build the wave: one round of (index → seed) work units per
        // eligible group.  The slate (and with it the per-unit work) is
        // fixed at round boundaries, which keeps results independent of
        // scheduling.
        let mut wave: Vec<(usize, u64)> = Vec::new();
        let mut wave_specs: Vec<Option<SlateSpec>> = self.groups.iter().map(|_| None).collect();
        let mut wave_cells: Vec<Vec<usize>> = self.groups.iter().map(|_| Vec::new()).collect();
        let mut wave_counts: Vec<usize> = self.groups.iter().map(|_| 0).collect();
        for (gi, group) in self.groups.iter().enumerate() {
            let active = group.active_cells();
            if active.is_empty() || group.next_index >= matrix.budget {
                continue;
            }
            let end = (group.next_index + round_size).min(matrix.budget);
            let mut contracts: Vec<Contract> =
                active.iter().map(|&ci| group.cells[ci].contract.clone()).collect();
            if matrix.escalation {
                // The coverage probe: pattern coverage is always measured
                // on CT-SEQ so escalation decisions depend only on the
                // target, never on the group's contract composition.
                contracts.push(Contract::ct_seq());
            }
            wave_specs[gi] = Some(SlateSpec {
                generator: group.generator.clone(),
                executor: ExecutorConfig::fast(group.target.mode)
                    .with_repetitions(matrix.repetitions),
                checks: SlateChecks::all(),
                contracts,
                speculation_filter: matrix.speculation_filter,
            });
            wave_cells[gi] = active;
            wave_counts[gi] = end - group.next_index;
            for index in group.next_index..end {
                wave.push((gi, unit_seed(matrix.seed, group.target.id, index)));
            }
        }
        if wave.is_empty() {
            return false;
        }
        self.wave += 1;

        // Evaluate the whole wave; each unit is independent.  Per-unit
        // evaluation time is recorded so cells can report their group's
        // attributed cost rather than matrix-wide wall clock.
        let specs = &wave_specs;
        let cpus: Vec<SpecCpu> = self.groups.iter().map(|g| g.target.cpu()).collect();
        let cpus = &cpus;
        let eval = move |(gi, seed): (usize, u64)| -> (usize, SeedEval, Duration) {
            let spec = specs[gi].as_ref().expect("scheduled group has a spec");
            let t0 = Instant::now();
            let unit = campaign::evaluate_seed(&cpus[gi], spec, seed);
            (gi, unit, t0.elapsed())
        };
        let units: Vec<(usize, SeedEval, Duration)> = match &self.pool {
            None => wave.into_iter().map(eval).collect(),
            Some(pool) => pool.install(|| {
                use rayon::prelude::*;
                wave.into_par_iter().map(eval).collect()
            }),
        };

        // Merge in deterministic order: the wave lists each scheduled
        // group's indices contiguously and in stream order.
        let mut cursor = 0usize;
        for (gi, scheduled) in wave_counts.iter().enumerate() {
            if *scheduled == 0 {
                continue;
            }
            let group = &mut self.groups[gi];
            for (_, eval, unit_time) in &units[cursor..cursor + scheduled] {
                group.next_index += 1;
                group.work += *unit_time;
                let unit = match eval {
                    // Statically leak-impossible: discarded unmeasured.
                    SeedEval::Filtered => {
                        group.filtered += 1;
                        continue;
                    }
                    // Malformed test cases are skipped (never happens for
                    // generated code).
                    SeedEval::Faulted => continue,
                    SeedEval::Measured(unit) => &**unit,
                };
                group.test_cases += 1;
                group.total_inputs += unit.inputs.len();
                if matrix.escalation {
                    // The probe outcome rides at the end of the slate.
                    let probe = unit.outcomes.last().expect("probe contract scheduled");
                    group.round_improved |= absorb_coverage(&mut group.coverage, &probe.class_members);
                }
                for (k, ci) in wave_cells[gi].iter().enumerate() {
                    let outcome = &unit.outcomes[k];
                    let cell = &mut group.cells[*ci];
                    if cell.report.is_some() {
                        continue;
                    }
                    cell.effectiveness.merge(&outcome.analysis.stats);
                    if outcome.confirmed_violation.is_none() {
                        continue;
                    }
                    // First confirmed violation for this cell: the cell
                    // finishes; later stream test cases no longer count
                    // toward it.
                    let vulnerability = classify(&group.target, &outcome.contract, &unit.tc);
                    let gadget = staticanalysis::gadget_class(&unit.tc, Some(&group.target));
                    let violation = ViolationReport {
                        test_case: unit.tc.clone(),
                        inputs: unit.inputs.clone(),
                        violation: outcome
                            .confirmed_violation
                            .clone()
                            .expect("checked above"),
                        contract: outcome.contract.clone(),
                        test_case_seed: unit.seed,
                        vulnerability,
                        gadget,
                        test_cases_until_detection: group.test_cases,
                        inputs_until_detection: group.total_inputs,
                    };
                    observer.cell_finished(&CellEvent {
                        target_id: group.target.id,
                        contract: outcome.contract.clone(),
                        found: true,
                        vulnerability: Some(vulnerability),
                        test_cases: group.test_cases,
                        elapsed: self.start.elapsed(),
                    });
                    cell.report = Some(CellReport {
                        target: group.target.clone(),
                        contract: outcome.contract.clone(),
                        violation: Some(violation),
                        test_cases: group.test_cases,
                        filtered: group.filtered,
                        total_inputs: group.total_inputs,
                        effectiveness: cell.effectiveness,
                        detection_time: group.work,
                    });
                }
            }
            cursor += scheduled;
            group.round += 1;

            // Round boundary: diversity feedback (§5.6), mirroring the
            // single-campaign fuzzer.  Only full rounds have a boundary; a
            // final partial round never escalates.
            if matrix.escalation && group.next_index.is_multiple_of(round_size) {
                let isa = group.target.isa;
                let goal_met = match group.coverage_level {
                    1 => group.coverage.all_single_covered(isa),
                    _ => group.coverage.all_pairs_covered(isa),
                };
                if goal_met || !group.round_improved {
                    if goal_met {
                        group.coverage_level += 1;
                    }
                    group.generator.escalate();
                    group.escalations += 1;
                }
                group.round_improved = false;
            }

            observer.round_completed(&RoundEvent {
                target_id: Some(group.target.id),
                round: group.round,
                test_cases: group.test_cases,
                filtered: group.filtered,
                escalations: group.escalations,
            });
        }
        true
    }

    /// Snapshot the run's progress for later [`CampaignMatrix::resume`].
    pub fn checkpoint(&self) -> MatrixCheckpoint {
        let mut cells: Vec<Option<CellProgress>> =
            self.matrix.cells.iter().map(|_| None).collect();
        for group in &self.groups {
            for gc in &group.cells {
                if let Some(report) = &gc.report {
                    cells[gc.cell_idx] = Some(CellProgress {
                        violation: report.violation.clone(),
                        test_cases: report.test_cases,
                        filtered: report.filtered,
                        total_inputs: report.total_inputs,
                        effectiveness: report.effectiveness,
                        detection_time: report.detection_time,
                    });
                }
            }
        }
        MatrixCheckpoint {
            wave: self.wave,
            seed: self.matrix.seed,
            budget: self.matrix.budget,
            round_size: self.matrix.round_size,
            escalation: self.matrix.escalation,
            config_digest: self.matrix.config_digest(),
            cells,
            groups: self
                .groups
                .iter()
                .map(|g| GroupProgress {
                    target_id: g.target.id,
                    next_index: g.next_index,
                    test_cases: g.test_cases,
                    filtered: g.filtered,
                    total_inputs: g.total_inputs,
                    effectiveness: g.cells.iter().map(|c| c.effectiveness).collect(),
                    round: g.round,
                    work: g.work,
                    escalations: g.escalations,
                    coverage_level: g.coverage_level,
                    round_improved: g.round_improved,
                    coverage: g.coverage.clone(),
                })
                .collect(),
        }
    }

    /// Close the run and assemble the report.  Cells still open (budget
    /// exhausted, or the run was abandoned early) are reported without a
    /// violation, with a `cell_finished` event each.
    pub fn finish(mut self, observer: &mut dyn ProgressObserver) -> MatrixReport {
        for group in &mut self.groups {
            for cell in &mut group.cells {
                if cell.report.is_none() {
                    observer.cell_finished(&CellEvent {
                        target_id: group.target.id,
                        contract: cell.contract.clone(),
                        found: false,
                        vulnerability: None,
                        test_cases: group.test_cases,
                        elapsed: self.start.elapsed(),
                    });
                    cell.report = Some(CellReport {
                        target: group.target.clone(),
                        contract: cell.contract.clone(),
                        violation: None,
                        test_cases: group.test_cases,
                        filtered: group.filtered,
                        total_inputs: group.total_inputs,
                        effectiveness: cell.effectiveness,
                        detection_time: group.work,
                    });
                }
            }
        }

        // Reassemble the reports in cell insertion order.
        let test_cases = self.groups.iter().map(|g| g.test_cases).sum();
        let generated = self.groups.iter().map(|g| g.next_index).sum();
        let statically_filtered = self.groups.iter().map(|g| g.filtered).sum();
        let mut slots: Vec<Option<CellReport>> = self.matrix.cells.iter().map(|_| None).collect();
        for group in self.groups {
            for cell in group.cells {
                slots[cell.cell_idx] = cell.report;
            }
        }
        MatrixReport {
            cells: slots.into_iter().map(|s| s.expect("every cell closed")).collect(),
            seed: self.matrix.seed,
            test_cases,
            generated,
            statically_filtered,
            duration: self.start.elapsed(),
        }
    }
}

/// Feed one test case's effective-class execution metadata into a coverage
/// accumulator; returns whether coverage improved.
fn absorb_coverage(coverage: &mut PatternCoverage, class_members: &[Vec<ExecutionInfo>]) -> bool {
    let member_refs: Vec<Vec<&ExecutionInfo>> =
        class_members.iter().map(|c| c.iter().collect()).collect();
    coverage.update(&member_refs)
}

/// The campaign seed of one (target, test-case index) work unit: a
/// splitmix64-style mix of the matrix seed, the target id and the index.
/// Streams are deterministic per target regardless of `parallelism` and of
/// which other cells are in the matrix.
fn unit_seed(matrix_seed: u64, target_id: u8, index: usize) -> u64 {
    let mut x = matrix_seed
        ^ u64::from(target_id).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (index as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix(parallelism: usize) -> CampaignMatrix {
        CampaignMatrix::new(7)
            .with_budget(60)
            .with_parallelism(parallelism)
            .add_cells(Target::target5(), Contract::table3_contracts())
    }

    /// Everything except the wall-clock fields.
    fn verdicts(report: &MatrixReport) -> Vec<(u8, String, Option<u64>, usize, usize)> {
        report
            .cells
            .iter()
            .map(|c| {
                (
                    c.target.id,
                    c.contract.name(),
                    c.violation.as_ref().map(|v| v.test_case_seed),
                    c.test_cases,
                    c.total_inputs,
                )
            })
            .collect()
    }

    #[test]
    fn table3_matrix_has_32_cells() {
        let m = CampaignMatrix::table3(3);
        assert_eq!(m.cells().len(), 32);
    }

    #[test]
    fn target5_group_reproduces_its_table3_row() {
        let report = small_matrix(1).run();
        assert!(report.cell(5, &Contract::ct_seq()).unwrap().found(), "V1 violates CT-SEQ");
        assert!(report.cell(5, &Contract::ct_bpas()).unwrap().found(), "V1 violates CT-BPAS");
        assert!(!report.cell(5, &Contract::ct_cond()).unwrap().found());
        assert!(!report.cell(5, &Contract::ct_cond_bpas()).unwrap().found());
        let v = report.cell(5, &Contract::ct_seq()).unwrap().violation.as_ref().unwrap();
        assert_eq!(v.vulnerability, VulnClass::SpectreV1);
        // The four cells share one stream: the group's measurement count is
        // the longest cell's, not the sum.
        assert_eq!(report.test_cases, 60);
    }

    #[test]
    fn matrix_results_are_parallelism_invariant() {
        let sequential = small_matrix(1).run();
        for parallelism in [2usize, 4] {
            let parallel = small_matrix(parallelism).run();
            assert_eq!(verdicts(&sequential), verdicts(&parallel), "parallelism {parallelism}");
        }
    }

    #[test]
    fn cell_verdicts_are_unchanged_by_unrelated_cells() {
        let alone = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq())
            .run();
        // Add cells of another target *and* more contracts of the same
        // target: neither may change the CT-SEQ cell's verdict.
        let crowded = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq())
            .add_cell(Target::target1(), Contract::ct_seq())
            .add_cells(Target::target5(), [Contract::ct_cond(), Contract::ct_bpas()])
            .run();
        let a = alone.cell(5, &Contract::ct_seq()).unwrap();
        let b = crowded.cell(5, &Contract::ct_seq()).unwrap();
        assert_eq!(a.found(), b.found());
        assert_eq!(a.test_cases, b.test_cases);
        assert_eq!(a.total_inputs, b.total_inputs);
        assert_eq!(
            a.violation.as_ref().map(|v| v.test_case_seed),
            b.violation.as_ref().map(|v| v.test_case_seed)
        );
    }

    #[test]
    fn speculation_filter_preserves_verdicts_and_reduces_measurements() {
        // The filter is sound: every violating cell keeps the exact same
        // violation (same seed, same counterexample), only the number of
        // *measured* test cases shrinks.  Target 1 generates AR-only
        // programs, which can never speculatively leak — its whole stream
        // is filtered.
        let build = |filter: bool| {
            CampaignMatrix::new(7)
                .with_budget(60)
                .add_cells(Target::target5(), Contract::table3_contracts())
                .add_cell(Target::target1(), Contract::ct_seq())
                .with_speculation_filter(filter)
                .run()
        };
        let unfiltered = build(false);
        let filtered = build(true);
        assert_eq!(unfiltered.statically_filtered, 0);
        assert!(filtered.statically_filtered > 0, "some test cases must be filtered");
        assert_eq!(unfiltered.generated, unfiltered.test_cases);
        assert_eq!(filtered.test_cases + filtered.statically_filtered, filtered.generated);

        for (a, b) in unfiltered.cells.iter().zip(&filtered.cells) {
            let cell = format!("target {} × {}", a.target.id, a.contract.name());
            assert_eq!(a.found(), b.found(), "{cell}: verdict must not change");
            assert!(b.test_cases <= a.test_cases, "{cell}: filtering cannot measure more");
            match (&a.violation, &b.violation) {
                (None, None) => {}
                (Some(va), Some(vb)) => {
                    // The counterexample itself is byte-identical; only the
                    // measured-work counters may shrink.
                    assert_eq!(va.test_case_seed, vb.test_case_seed, "{cell}");
                    assert_eq!(va.test_case, vb.test_case, "{cell}");
                    assert_eq!(va.inputs, vb.inputs, "{cell}");
                    assert_eq!(va.violation, vb.violation, "{cell}");
                    assert_eq!(va.vulnerability, vb.vulnerability, "{cell}");
                    assert_eq!(va.gadget, vb.gadget, "{cell}");
                    assert!(vb.test_cases_until_detection <= va.test_cases_until_detection);
                }
                _ => panic!("{cell}: verdicts diverged"),
            }
        }

        // The AR-only target shows the full reduction: nothing is measured.
        let t1 = filtered.cell(1, &Contract::ct_seq()).unwrap();
        assert_eq!(t1.test_cases, 0, "AR-only programs are all statically leak-impossible");
        assert_eq!(t1.filtered, 60);
        // And at least one *violating* cell measured strictly less.
        let a = unfiltered.cell(5, &Contract::ct_seq()).unwrap();
        let b = filtered.cell(5, &Contract::ct_seq()).unwrap();
        assert!(b.found());
        assert!(
            b.test_cases < a.test_cases || b.filtered > 0,
            "the violating group must show a measured reduction"
        );
    }

    #[test]
    fn observer_sees_rounds_and_cells() {
        struct Recorder {
            rounds: usize,
            cells: Vec<(u8, String, bool)>,
        }
        impl ProgressObserver for Recorder {
            fn round_completed(&mut self, _event: &RoundEvent) {
                self.rounds += 1;
            }
            fn cell_finished(&mut self, event: &CellEvent) {
                self.cells.push((event.target_id, event.contract.name(), event.found));
            }
        }
        let mut rec = Recorder { rounds: 0, cells: Vec::new() };
        let report = small_matrix(1).run_with_observer(&mut rec);
        assert!(rec.rounds >= 1);
        assert_eq!(rec.cells.len(), report.cells.len());
        assert_eq!(rec.cells.iter().filter(|(_, _, found)| *found).count(), 2);
    }

    #[test]
    fn empty_matrix_finishes_immediately() {
        let report = CampaignMatrix::new(1).run();
        assert!(report.cells.is_empty());
        assert_eq!(report.test_cases, 0);
    }

    #[test]
    fn unit_seed_streams_are_target_scoped() {
        // Different targets draw from disjoint-looking streams; the same
        // (target, index) always maps to the same seed.
        assert_eq!(unit_seed(3, 5, 0), unit_seed(3, 5, 0));
        assert_ne!(unit_seed(3, 5, 0), unit_seed(3, 5, 1));
        assert_ne!(unit_seed(3, 5, 0), unit_seed(3, 4, 0));
        assert_ne!(unit_seed(3, 5, 0), unit_seed(4, 5, 0));
    }

    #[test]
    fn stepped_run_matches_one_shot_run() {
        let matrix = small_matrix(1);
        let one_shot = matrix.run();
        let mut run = matrix.start();
        let mut waves = 0;
        while run.step(&mut NoopObserver) {
            waves += 1;
        }
        let stepped = run.finish(&mut NoopObserver);
        assert!(waves >= 2, "budget 60 / round 10 must take several waves");
        assert_eq!(verdicts(&one_shot), verdicts(&stepped));
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_at_every_wave_boundary() {
        // Interrupt the matrix after each wave in turn; the resumed run
        // must reproduce the uninterrupted verdicts exactly — including the
        // full violation reports.
        let matrix = CampaignMatrix::new(7)
            .with_budget(40)
            .add_cells(Target::target5(), Contract::table3_contracts())
            .add_cell(Target::target1(), Contract::ct_seq());
        let baseline = matrix.run();
        for interrupt_after in 1..=3usize {
            let mut run = matrix.start();
            for _ in 0..interrupt_after {
                run.step(&mut NoopObserver);
            }
            let snapshot = run.checkpoint();
            drop(run); // the "kill"

            let mut resumed = matrix.resume(&snapshot).expect("checkpoint matches");
            while resumed.step(&mut NoopObserver) {}
            let report = resumed.finish(&mut NoopObserver);
            assert_eq!(verdicts(&baseline), verdicts(&report), "interrupted after {interrupt_after}");
            for (a, b) in baseline.cells.iter().zip(&report.cells) {
                assert_eq!(a.violation, b.violation, "violation reports must match exactly");
            }
        }
    }

    #[test]
    fn wave_counter_advances_per_step_and_survives_resume() {
        let matrix = small_matrix(1);
        let mut run = matrix.start();
        assert_eq!(run.wave(), 0);
        assert!(run.step(&mut NoopObserver));
        assert!(run.step(&mut NoopObserver));
        assert_eq!(run.wave(), 2);
        let snapshot = run.checkpoint();
        assert_eq!(snapshot.wave, 2);
        drop(run);
        let mut resumed = matrix.resume(&snapshot).expect("checkpoint matches");
        assert_eq!(resumed.wave(), 2);
        if resumed.step(&mut NoopObserver) {
            assert_eq!(resumed.wave(), 3, "a resumed run continues the wave count");
        }
    }

    #[test]
    fn checkpoint_digest_is_stable_and_sensitive() {
        let matrix = small_matrix(1);
        let mut run = matrix.start();
        run.step(&mut NoopObserver);
        let snapshot = run.checkpoint();
        // Stable: digesting the same (or a cloned) snapshot agrees.
        assert_eq!(snapshot.digest(), snapshot.digest());
        assert_eq!(snapshot.digest(), snapshot.clone().digest());
        // Sensitive: any field change (here: progress counters, the wave,
        // the seed) moves the digest.
        let mut other = snapshot.clone();
        other.wave += 1;
        assert_ne!(snapshot.digest(), other.digest());
        let mut other = snapshot.clone();
        other.seed ^= 1;
        assert_ne!(snapshot.digest(), other.digest());
        let mut other = snapshot.clone();
        other.groups[0].next_index += 1;
        assert_ne!(snapshot.digest(), other.digest());
        // A later wave of the same run digests differently too.
        let mut run = matrix.resume(&snapshot).expect("resumes");
        run.step(&mut NoopObserver);
        assert_ne!(snapshot.digest(), run.checkpoint().digest());
    }

    #[test]
    fn resume_rejects_mismatched_checkpoints() {
        let matrix = small_matrix(1);
        let snapshot = matrix.start().checkpoint();
        assert!(matrix.resume(&snapshot).is_ok());
        let err = match small_matrix(1).with_budget(30).resume(&snapshot) {
            Err(e) => e,
            Ok(_) => panic!("mismatched budget must be rejected"),
        };
        assert!(err.contains("budget"), "{err}");
        let other_seed = CampaignMatrix::new(8)
            .with_budget(60)
            .add_cells(Target::target5(), Contract::table3_contracts());
        assert!(other_seed.resume(&snapshot).is_err());
        let fewer_cells = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq());
        assert!(fewer_cells.resume(&snapshot).is_err());
        let escalating = small_matrix(1).with_escalation(true);
        assert!(escalating.resume(&snapshot).is_err());
        // Same seed/budget/cell count, different stream-relevant knobs:
        // the configuration digest must catch each.
        assert!(small_matrix(1).with_generator_size(5, 14).resume(&snapshot).is_err());
        assert!(small_matrix(1).with_inputs_per_test_case(10).resume(&snapshot).is_err());
        assert!(small_matrix(1).with_repetitions(3).resume(&snapshot).is_err());
        // The pre-filter changes which seeds are measured, so an
        // unfiltered checkpoint must not resume on a filtering matrix.
        assert!(small_matrix(1).with_speculation_filter(true).resume(&snapshot).is_err());
        let swapped_contract = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cells(
                Target::target5(),
                [
                    Contract::ct_seq(),
                    Contract::ct_bpas(),
                    Contract::ct_cond(),
                    Contract::arch_seq(), // last contract differs
                ],
            );
        assert!(swapped_contract.resume(&snapshot).is_err());
    }

    /// Observer that records the escalation counter of every round event.
    struct EscalationRecorder(Vec<usize>);
    impl ProgressObserver for EscalationRecorder {
        fn round_completed(&mut self, event: &RoundEvent) {
            self.0.push(event.escalations);
        }
    }

    #[test]
    fn round_events_report_the_true_escalation_count() {
        // Without escalation the count is genuinely zero; with escalation
        // an AR-only target (whose coverage goal saturates almost
        // immediately) escalates within a few rounds, and the counter is
        // monotone.
        let fixed = CampaignMatrix::new(3)
            .with_budget(40)
            .add_cell(Target::target1(), Contract::ct_seq());
        let mut rec = EscalationRecorder(Vec::new());
        fixed.run_with_observer(&mut rec);
        assert!(!rec.0.is_empty() && rec.0.iter().all(|&e| e == 0));

        let escalating = fixed.clone().with_escalation(true);
        let mut rec = EscalationRecorder(Vec::new());
        escalating.run_with_observer(&mut rec);
        assert!(rec.0.windows(2).all(|w| w[0] <= w[1]), "monotone: {:?}", rec.0);
        assert!(
            *rec.0.last().unwrap() > 0,
            "AR coverage saturates, so the group must escalate: {:?}",
            rec.0
        );
    }

    #[test]
    fn escalating_matrix_is_parallelism_and_composition_invariant() {
        // The coverage probe makes escalation a function of the target
        // stream alone: verdicts stay identical across worker-pool sizes
        // and when unrelated cells join the matrix.
        let build = |parallelism: usize| {
            CampaignMatrix::new(7)
                .with_budget(60)
                .with_escalation(true)
                .with_parallelism(parallelism)
                .add_cells(Target::target5(), Contract::table3_contracts())
        };
        let sequential = build(1).run();
        for parallelism in [2usize, 4] {
            assert_eq!(
                verdicts(&sequential),
                verdicts(&build(parallelism).run()),
                "parallelism {parallelism}"
            );
        }

        let alone = CampaignMatrix::new(7)
            .with_budget(60)
            .with_escalation(true)
            .add_cell(Target::target5(), Contract::ct_seq())
            .run();
        let crowded = CampaignMatrix::new(7)
            .with_budget(60)
            .with_escalation(true)
            .add_cell(Target::target5(), Contract::ct_seq())
            .add_cell(Target::target1(), Contract::ct_seq())
            .add_cells(Target::target5(), [Contract::ct_cond(), Contract::ct_bpas()])
            .run();
        let a = alone.cell(5, &Contract::ct_seq()).unwrap();
        let b = crowded.cell(5, &Contract::ct_seq()).unwrap();
        assert_eq!(a.found(), b.found());
        assert_eq!(a.test_cases, b.test_cases);
        assert_eq!(
            a.violation.as_ref().map(|v| v.test_case_seed),
            b.violation.as_ref().map(|v| v.test_case_seed)
        );
    }

    /// Two groups with different stream lengths: target 5 finds violations
    /// early, target 1 runs its whole budget.
    fn two_group_matrix() -> CampaignMatrix {
        CampaignMatrix::new(7)
            .with_budget(40)
            .add_cells(Target::target5(), Contract::table3_contracts())
            .add_cell(Target::target1(), Contract::ct_seq())
    }

    #[test]
    fn initial_checkpoint_matches_an_unstepped_run() {
        let matrix = two_group_matrix();
        let fresh = matrix.start().checkpoint();
        assert_eq!(matrix.initial_checkpoint(), fresh);
        assert_eq!(matrix.initial_checkpoint().digest(), fresh.digest());
    }

    #[test]
    fn independently_driven_sub_runs_merge_into_the_exact_full_report() {
        let matrix = two_group_matrix();
        let baseline = matrix.run();

        // Drive each group on its own sub-matrix — as different fleet hosts
        // would — checkpointing after every wave like the service does.
        let subs = matrix.group_matrices();
        assert_eq!(subs.len(), 2);
        let mut parts = Vec::new();
        for sub in &subs {
            let first = sub.cells()[0].target.id;
            assert!(sub.cells().iter().all(|c| c.target.id == first), "one target per sub-matrix");
            let mut run = sub.start();
            let mut last = run.checkpoint();
            while run.step(&mut NoopObserver) {
                last = run.checkpoint();
            }
            drop(run); // the host never reports a MatrixReport, only checkpoints

            // A finished sub-run's final checkpoint IS its result: resuming
            // it and finishing with zero steps reproduces the exact report.
            let resumed = sub.resume(&last).expect("final checkpoint matches");
            assert!(!resumed.has_work());
            parts.push(resumed.finish(&mut NoopObserver));
        }

        let merged = matrix.merge_reports(parts).expect("parts match the matrix");
        assert_eq!(verdicts(&baseline), verdicts(&merged));
        for (a, b) in baseline.cells.iter().zip(&merged.cells) {
            assert_eq!(a.violation, b.violation, "violation reports must match exactly");
        }
        assert_eq!(baseline.test_cases, merged.test_cases);
        assert_eq!(baseline.generated, merged.generated);
    }

    #[test]
    fn split_checkpoint_relocates_groups_mid_run() {
        // Start the full matrix in-process, interrupt it mid-run, split the
        // checkpoint and finish each group on its own sub-matrix (the
        // "units stolen by other hosts" shape).  Verdicts must be
        // byte-identical to the uninterrupted run.
        let matrix = two_group_matrix();
        let baseline = matrix.run();
        let mut run = matrix.start();
        run.step(&mut NoopObserver);
        run.step(&mut NoopObserver);
        let snapshot = run.checkpoint();
        drop(run);

        let subs = matrix.group_matrices();
        let split = matrix.split_checkpoint(&snapshot).expect("checkpoint matches");
        assert_eq!(split.len(), subs.len());
        // A sub-checkpoint's wave is its group's completed round count.
        for (part, progress) in split.iter().zip(&snapshot.groups) {
            assert_eq!(part.wave, progress.round);
        }
        let mut parts = Vec::new();
        for (sub, part) in subs.iter().zip(&split) {
            let mut run = sub.resume(part).expect("sub-checkpoint matches its sub-matrix");
            while run.step(&mut NoopObserver) {}
            parts.push(run.finish(&mut NoopObserver));
        }
        let merged = matrix.merge_reports(parts).expect("parts match the matrix");
        assert_eq!(verdicts(&baseline), verdicts(&merged));
        for (a, b) in baseline.cells.iter().zip(&merged.cells) {
            assert_eq!(a.violation, b.violation);
        }
    }

    #[test]
    fn unevenly_progressed_sub_runs_merge_into_a_resumable_checkpoint() {
        // Split a fresh matrix, advance the groups by different amounts on
        // their sub-matrices, merge the sub-checkpoints and resume the
        // merged snapshot on the FULL matrix in one process.  This is the
        // coordinator's restart path: per-unit fleet progress folds back
        // into one job-level checkpoint.
        let matrix = two_group_matrix();
        let baseline = matrix.run();

        let subs = matrix.group_matrices();
        let split = matrix.split_checkpoint(&matrix.initial_checkpoint()).expect("fresh split");
        let mut advanced = Vec::new();
        for (gi, (sub, part)) in subs.iter().zip(&split).enumerate() {
            let mut run = sub.resume(part).expect("fresh sub-checkpoint matches");
            for _ in 0..gi * 2 {
                run.step(&mut NoopObserver); // group 0: untouched; group 1: 2 waves
            }
            advanced.push(run.checkpoint());
        }
        let merged = matrix.merge_checkpoints(&advanced).expect("parts match");
        assert_eq!(merged.wave, advanced.iter().map(|p| p.wave).sum::<usize>());

        let mut resumed = matrix.resume(&merged).expect("merged checkpoint matches");
        while resumed.step(&mut NoopObserver) {}
        let report = resumed.finish(&mut NoopObserver);
        assert_eq!(verdicts(&baseline), verdicts(&report));
        for (a, b) in baseline.cells.iter().zip(&report.cells) {
            assert_eq!(a.violation, b.violation);
        }
    }

    #[test]
    fn escalating_sub_runs_split_and_merge_byte_identically() {
        // Escalation state is per group, so it relocates with the
        // sub-checkpoint: a group stolen mid-escalation replays the same
        // generator growth on the new host.
        let matrix = CampaignMatrix::new(11)
            .with_budget(40)
            .with_escalation(true)
            .add_cells(Target::target5(), Contract::table3_contracts())
            .add_cell(Target::target1(), Contract::ct_seq());
        let baseline = matrix.run();
        let mut run = matrix.start();
        run.step(&mut NoopObserver);
        run.step(&mut NoopObserver);
        run.step(&mut NoopObserver);
        let snapshot = run.checkpoint();
        drop(run);

        let subs = matrix.group_matrices();
        let split = matrix.split_checkpoint(&snapshot).expect("checkpoint matches");
        let mut parts = Vec::new();
        for (sub, part) in subs.iter().zip(&split) {
            let mut run = sub.resume(part).expect("sub-checkpoint matches");
            while run.step(&mut NoopObserver) {}
            parts.push(run.checkpoint());
        }
        // Service shape: results travel as final checkpoints, and the
        // merged checkpoint resumes-and-finishes on the full matrix.
        let merged = matrix.merge_checkpoints(&parts).expect("parts match");
        let resumed = matrix.resume(&merged).expect("merged checkpoint matches");
        assert!(!resumed.has_work());
        let report = resumed.finish(&mut NoopObserver);
        assert_eq!(verdicts(&baseline), verdicts(&report));
        for (a, b) in baseline.cells.iter().zip(&report.cells) {
            assert_eq!(a.violation, b.violation);
        }
    }

    #[test]
    fn merge_rejects_mismatched_parts() {
        let matrix = two_group_matrix();
        let split = matrix.split_checkpoint(&matrix.initial_checkpoint()).expect("fresh split");

        // Wrong order: group digests are position-sensitive.
        let swapped: Vec<MatrixCheckpoint> = split.iter().rev().cloned().collect();
        assert!(matrix.merge_checkpoints(&swapped).is_err());
        // Wrong count.
        assert!(matrix.merge_checkpoints(&split[..1]).is_err());
        // Tampered seed.
        let mut bad = split.clone();
        bad[0].seed ^= 1;
        assert!(matrix.merge_checkpoints(&bad).is_err());
        // A foreign matrix's checkpoint cannot be split.
        let other = CampaignMatrix::new(8).add_cell(Target::target5(), Contract::ct_seq());
        assert!(matrix.split_checkpoint(&other.initial_checkpoint()).is_err());
        // Valid parts round-trip.
        let merged = matrix.merge_checkpoints(&split).expect("identity round-trip");
        assert_eq!(merged, matrix.initial_checkpoint());
    }

    #[test]
    fn escalating_checkpoint_resume_is_byte_identical() {
        // Escalation state (coverage, level, generator growth) survives
        // the checkpoint: resuming mid-campaign replays the same stream.
        let matrix = CampaignMatrix::new(11)
            .with_budget(40)
            .with_escalation(true)
            .add_cells(Target::target5(), Contract::table3_contracts());
        let baseline = matrix.run();
        let mut run = matrix.start();
        run.step(&mut NoopObserver);
        run.step(&mut NoopObserver);
        let snapshot = run.checkpoint();
        drop(run);
        let mut resumed = matrix.resume(&snapshot).expect("checkpoint matches");
        while resumed.step(&mut NoopObserver) {}
        let report = resumed.finish(&mut NoopObserver);
        assert_eq!(verdicts(&baseline), verdicts(&report));
        for (a, b) in baseline.cells.iter().zip(&report.cells) {
            assert_eq!(a.violation, b.violation);
        }
    }
}
