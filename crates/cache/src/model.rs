//! LRU set-associative cache model.

use serde::{Deserialize, Serialize};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: u64,
}

impl CacheConfig {
    /// The 32 KiB, 8-way L1D of the Skylake / Coffee Lake parts tested in
    /// the paper: 64 sets × 8 ways × 64 B.
    pub fn l1d() -> CacheConfig {
        CacheConfig { sets: 64, ways: 8, line_size: 64 }
    }

    /// A tiny cache useful for eviction-heavy unit tests.
    pub fn tiny(sets: usize, ways: usize) -> CacheConfig {
        CacheConfig { sets, ways, line_size: 64 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_size
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::l1d()
    }
}

/// One cache line: tag plus LRU age (smaller = more recently used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    tag: u64,
    age: u32,
}

/// An LRU set-associative cache.
///
/// Addresses are mapped to sets by `(addr / line_size) % sets`; the tag is
/// the full line address, so distinct addresses never alias incorrectly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Create an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        Cache { config, sets: vec![Vec::new(); config.sets], accesses: 0, misses: 0 }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Line-granular tag of an address.
    #[inline]
    pub fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_size
    }

    /// Set index of an address.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        (self.tag_of(addr) as usize) % self.config.sets
    }

    /// Access (load or store) the line containing `addr`, filling it on a
    /// miss and updating LRU state.  Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let tag = self.tag_of(addr);
        let set_idx = self.set_of(addr);
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        // Age everything, then handle hit/miss.
        for line in set.iter_mut() {
            line.age = line.age.saturating_add(1);
        }
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.age = 0;
            return true;
        }
        self.misses += 1;
        if set.len() >= ways {
            // Evict the oldest line.
            let victim = set
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.age)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set.remove(victim);
        }
        set.push(Line { tag, age: 0 });
        false
    }

    /// Access without filling: returns whether the line is present and
    /// refreshes its LRU age if it is (models a probe load that hits).
    pub fn probe_access(&mut self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let set_idx = self.set_of(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.tag == tag) {
            line.age = 0;
            true
        } else {
            false
        }
    }

    /// Is the line containing `addr` currently cached?
    pub fn is_cached(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        self.sets[self.set_of(addr)].iter().any(|l| l.tag == tag)
    }

    /// Flush the line containing `addr` (CLFLUSH).
    pub fn flush(&mut self, addr: u64) {
        let tag = self.tag_of(addr);
        let set_idx = self.set_of(addr);
        self.sets[set_idx].retain(|l| l.tag != tag);
    }

    /// Flush the entire cache.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of valid lines in a set.
    pub fn set_occupancy(&self, set: usize) -> usize {
        self.sets[set].len()
    }

    /// Tags currently resident in a set.
    pub fn set_tags(&self, set: usize) -> Vec<u64> {
        self.sets[set].iter().map(|l| l.tag).collect()
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses observed (the quantity the paper reads from the L1D
    /// miss performance counter during probing, §5.3).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Reset the hit/miss counters without touching cache contents.
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_capacity() {
        assert_eq!(CacheConfig::l1d().capacity(), 32 * 1024);
        assert_eq!(CacheConfig::tiny(2, 2).capacity(), 256);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x140), "next line misses");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn set_mapping() {
        let c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(64), 1);
        assert_eq!(c.set_of(64 * 64), 0);
        assert_eq!(c.set_of(63), 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(CacheConfig::tiny(1, 2));
        c.access(0); // A
        c.access(64); // B  (set 0 again since only 1 set)
        c.access(0); // A refreshed
        c.access(128); // C evicts B (least recently used)
        assert!(c.is_cached(0));
        assert!(!c.is_cached(64));
        assert!(c.is_cached(128));
    }

    #[test]
    fn associativity_respected() {
        let cfg = CacheConfig::tiny(4, 2);
        let mut c = Cache::new(cfg);
        // Three lines mapping to set 0: strides of sets*line_size.
        let stride = cfg.sets as u64 * cfg.line_size;
        c.access(0);
        c.access(stride);
        c.access(2 * stride);
        assert_eq!(c.set_occupancy(0), 2);
        assert!(!c.is_cached(0), "oldest evicted");
    }

    #[test]
    fn flush_removes_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x1000);
        assert!(c.is_cached(0x1000));
        c.flush(0x1000);
        assert!(!c.is_cached(0x1000));
        c.access(0x2000);
        c.flush_all();
        assert!(!c.is_cached(0x2000));
    }

    #[test]
    fn probe_access_does_not_fill() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.probe_access(0x40));
        assert!(!c.is_cached(0x40));
        c.access(0x40);
        assert!(c.probe_access(0x40));
    }

    #[test]
    fn counters_reset() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0);
        c.reset_counters();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.is_cached(0), "contents preserved");
    }

    #[test]
    fn set_tags_reported() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x0);
        c.access(0x1000);
        let tags = c.set_tags(0);
        assert!(tags.contains(&0));
        assert!(tags.contains(&(0x1000 / 64)));
    }
}
