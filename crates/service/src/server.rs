//! The TCP front-end: a JSON-lines protocol over a non-blocking poll loop.
//!
//! The workspace is vendored/offline, so there is no async runtime; the
//! front-end is written in the *shape* of one instead — a single-threaded
//! reactor whose [`Server::poll_once`] makes one non-blocking pass over the
//! listener and every connection and reports whether it made progress.
//! Swapping in a real runtime later means driving `poll_once` from a task
//! (or replacing it with per-connection futures); no protocol or core
//! changes are needed.
//!
//! ## Protocol
//!
//! One JSON object per line in both directions (`\n`-terminated).
//! Requests carry an `op` field:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"ping"}` | `{"ok":true,"pong":true}` |
//! | `{"op":"submit","spec":{…}}` | `{"ok":true,"job":"…","shard":n}` |
//! | `{"op":"status","job":"…"}` | `{"ok":true,"status":{…}}` |
//! | `{"op":"list"}` | `{"ok":true,"jobs":[{…}]}` |
//! | `{"op":"result","job":"…"}` | `{"ok":true,"done":bool,"result":{…}\|null}` |
//! | `{"op":"watch","job":"…"}` | `{"ok":true,"watching":"…"}`, then streamed events |
//! | `{"op":"cancel","job":"…"}` | `{"ok":true,"job":"…","state":"cancelled"\|"cancelling"}` |
//!
//! **Auth**: when the server runs with a token file
//! ([`ServiceConfig::token_file`](crate::ServiceConfig::token_file)),
//! every request except `ping` must carry a `"token"` field naming a
//! known token; unauthenticated (or unknown-token) requests are rejected
//! with an `unauthorized: …` error.  Submitted jobs are stamped with the
//! token's *tenant*, `list` returns only the caller's (and tenantless)
//! jobs, and every job-addressed op (`status`, `result`, `watch`,
//! `cancel`) answers `unknown job` for jobs owned by other tenants —
//! existence is not leaked across tenants.  Without a token file the
//! protocol is exactly as before (tokens are ignored).
//!
//! Errors come back as `{"ok":false,"error":"…"}`.  A `watch` subscription
//! streams the job's event log from the beginning (`{"event":"round"\|"cell"}`
//! lines) and ends with the `{"event":"done","result":{…}}` line (for a
//! cancelled job that line additionally carries `"cancelled":true`).
//! `submit` specs may carry a `"priority"` field — among queued jobs,
//! higher priorities start first.  A `cancel` of a queued job is
//! immediate (`"cancelled"`); a running job stops cooperatively at its
//! next wave boundary (`"cancelling"`, then the `done` event).
//!
//! **Backpressure**: when the queued work-unit count is at or above
//! [`ServiceConfig::queue_watermark`](crate::ServiceConfig::queue_watermark),
//! `submit` defers instead of accepting unbounded work — the error
//! response additionally carries `"retry_after_ms"`, `"queued_units"` and
//! `"watermark"`, and the client should retry after the hint
//! ([`Client::try_submit`](crate::Client::try_submit) surfaces this as a
//! typed variant).

use crate::core::{ServiceCore, SubmitRejection};
use crate::framing;
use crate::job::JobSpec;
use rvz_bench::json::{parse, Json};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One client connection of the reactor.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Active `watch` subscriptions: (job id, next event cursor).
    watches: Vec<(String, usize)>,
    closed: bool,
}

impl Conn {
    fn queue_line(&mut self, doc: &Json) {
        framing::queue_line(&mut self.outbuf, doc);
    }
}

/// The reactor state: listener + connections (see the module docs).
pub struct Server {
    core: Arc<ServiceCore>,
    listener: TcpListener,
    addr: SocketAddr,
    conns: Vec<Conn>,
}

impl Server {
    /// Bind the listener (non-blocking) on `listen`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(core: Arc<ServiceCore>, listen: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server { core, listener, addr, conns: Vec::new() })
    }

    /// The bound address (useful with an ephemeral `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// One non-blocking pass: accept, read, dispatch, stream watch events,
    /// flush.  Returns whether any I/O progress was made (callers sleep
    /// briefly when idle).
    pub fn poll_once(&mut self) -> bool {
        let mut progress = false;

        // Accept everything currently pending.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(Conn {
                            stream,
                            inbuf: Vec::new(),
                            outbuf: Vec::new(),
                            watches: Vec::new(),
                            closed: false,
                        });
                        progress = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        for conn in &mut self.conns {
            progress |= Self::service_conn(&self.core, conn);
        }
        self.conns.retain(|c| !c.closed);
        progress
    }

    /// Read, dispatch and write one connection; returns progress.
    fn service_conn(core: &Arc<ServiceCore>, conn: &mut Conn) -> bool {
        // Read whatever is available.
        let (mut progress, closed) = framing::read_available(&mut conn.stream, &mut conn.inbuf);
        conn.closed |= closed;

        // Dispatch complete lines.
        while let Some(line) = framing::next_line(&mut conn.inbuf) {
            let response = dispatch(core, &line, &mut conn.watches);
            conn.queue_line(&response);
            progress = true;
        }

        // Stream watch events (log replay by cursor).
        let mut finished_watches = Vec::new();
        for (wi, (job, cursor)) in conn.watches.iter_mut().enumerate() {
            if let Some(events) = core.events_from(job, *cursor) {
                for event in &events {
                    framing::queue_line(&mut conn.outbuf, event);
                    if event.get("event").and_then(Json::as_str) == Some("done") {
                        finished_watches.push(wi);
                    }
                    progress = true;
                }
                *cursor += events.len();
            }
        }
        for wi in finished_watches.into_iter().rev() {
            conn.watches.remove(wi);
        }

        // Flush as much as the socket accepts.
        let (wrote, closed) = framing::flush(&mut conn.stream, &mut conn.outbuf);
        conn.closed |= closed;
        progress | wrote
    }

    /// Drive the reactor until the core stops.
    pub fn run(mut self) {
        while !self.core.stopped() {
            if !self.poll_once() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// The caller's resolved identity: `Open` on servers without a token
/// file, `Tenant` after a successful token lookup.
enum Identity {
    /// No auth configured; every job is visible.
    Open,
    /// Authenticated as this tenant; sees own and tenantless jobs.
    Tenant(String),
}

impl Identity {
    /// Whether a job owned by `owner` is visible to this caller.
    fn sees(&self, owner: Option<&str>) -> bool {
        match (self, owner) {
            (Identity::Open, _) | (_, None) => true,
            (Identity::Tenant(tenant), Some(owner)) => tenant == owner,
        }
    }

    /// The tenant to stamp on submitted jobs.
    fn tenant(&self) -> Option<&str> {
        match self {
            Identity::Open => None,
            Identity::Tenant(tenant) => Some(tenant),
        }
    }
}

/// Resolve the request's identity against the core's token table.
/// `Err` carries the ready-to-send unauthorized response.
fn authenticate(core: &ServiceCore, request: &Json, op: &str) -> Result<Identity, Json> {
    let Some(tokens) = core.auth() else { return Ok(Identity::Open) };
    match request.get("token").and_then(Json::as_str) {
        Some(token) => match tokens.get(token) {
            Some(tenant) => Ok(Identity::Tenant(tenant.clone())),
            None => Err(error("unauthorized: unknown token".to_string())),
        },
        None if op == "ping" => Ok(Identity::Open),
        None => Err(error(format!(
            "unauthorized: `{op}` requires a `token` field on this server \
             (it runs with --token-file; pass --token to revizor-submit)"
        ))),
    }
}

/// Handle one request line; returns the response document (and may register
/// a watch subscription).
fn dispatch(core: &Arc<ServiceCore>, line: &str, watches: &mut Vec<(String, usize)>) -> Json {
    let request = match parse(line) {
        Ok(doc) => doc,
        Err(e) => return error(format!("malformed request: {e}")),
    };
    let op = match request.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return error("request needs a string `op` field".to_string()),
    };
    let identity = match authenticate(core, &request, op) {
        Ok(identity) => identity,
        Err(response) => return response,
    };
    // A job-addressed op on another tenant's job answers exactly like a
    // nonexistent job, so job ids never leak across tenants.
    let visible = |job: &str| -> Result<(), Json> {
        match core.status(job) {
            Some(status) if identity.sees(status.tenant.as_deref()) => Ok(()),
            _ => Err(error(format!("unknown job `{job}`"))),
        }
    };
    match op {
        "ping" => Json::obj().field("ok", true).field("pong", true),
        "submit" => {
            let Some(spec) = request.get("spec") else {
                return error("submit needs a `spec` object".to_string());
            };
            let mut spec = match JobSpec::from_json(spec) {
                Ok(spec) => spec,
                Err(e) => return error(e),
            };
            // Ownership comes from the authenticated token, never from
            // the submitted document.
            spec.tenant = identity.tenant().map(str::to_string);
            match core.try_submit(spec) {
                Ok(job) => {
                    let shard = core.status(&job).map(|s| s.shard).unwrap_or(0);
                    Json::obj().field("ok", true).field("job", job).field("shard", shard)
                }
                Err(SubmitRejection::Invalid(e)) => error(e),
                Err(SubmitRejection::Backpressure(bp)) => {
                    let retry_ms = bp.retry_after.as_millis() as u64;
                    error(format!(
                        "backpressure: {} work units queued (watermark {}); retry in {retry_ms}ms",
                        bp.queued_units, bp.watermark
                    ))
                    .field("retry_after_ms", retry_ms)
                    .field("queued_units", bp.queued_units)
                    .field("watermark", bp.watermark)
                }
            }
        }
        "status" => match job_of(&request) {
            Err(e) => error(e),
            Ok(job) => match visible(job) {
                Err(response) => response,
                Ok(()) => match core.status(job) {
                    Some(status) => {
                        Json::obj().field("ok", true).field("status", status.to_json())
                    }
                    None => error(format!("unknown job `{job}`")),
                },
            },
        },
        "list" => Json::obj().field("ok", true).field(
            "jobs",
            Json::Arr(
                core.list()
                    .iter()
                    .filter(|s| identity.sees(s.tenant.as_deref()))
                    .map(|s| s.to_json())
                    .collect(),
            ),
        ),
        "result" => match job_of(&request) {
            Err(e) => error(e),
            Ok(job) => match visible(job) {
                Err(response) => response,
                Ok(()) => match core.result(job) {
                    None => error(format!("unknown job `{job}`")),
                    Some(None) => Json::obj()
                        .field("ok", true)
                        .field("done", false)
                        .field("result", Json::Null),
                    Some(Some(result)) => {
                        Json::obj().field("ok", true).field("done", true).field("result", result)
                    }
                },
            },
        },
        "watch" => match job_of(&request) {
            Err(e) => error(e),
            Ok(job) => {
                if let Err(response) = visible(job) {
                    return response;
                }
                watches.push((job.to_string(), 0));
                Json::obj().field("ok", true).field("watching", job)
            }
        },
        "cancel" => match job_of(&request) {
            Err(e) => error(e),
            Ok(job) => match visible(job) {
                Err(response) => response,
                // A queued job is already terminally cancelled; a running
                // one stops cooperatively at its next wave boundary.
                Ok(()) => match core.cancel(job) {
                    Ok(phase) => Json::obj().field("ok", true).field("job", job).field(
                        "state",
                        if phase == crate::spool::JobPhase::Cancelled {
                            "cancelled"
                        } else {
                            "cancelling"
                        },
                    ),
                    Err(e) => error(e),
                },
            },
        },
        op => error(format!("unknown op `{op}`")),
    }
}

fn job_of(request: &Json) -> Result<&str, String> {
    request
        .get("job")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string `job` field".to_string())
}

fn error(message: String) -> Json {
    Json::obj().field("ok", false).field("error", message)
}

/// A running front-end: the reactor thread plus its bound address.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// Spawn the reactor on its own thread.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(core: Arc<ServiceCore>, listen: &str) -> io::Result<ServerHandle> {
        let server = Server::bind(core, listen)?;
        let addr = server.local_addr();
        let thread = std::thread::Builder::new()
            .name("rvz-service-reactor".to_string())
            .spawn(move || server.run())
            .map_err(io::Error::other)?;
        Ok(ServerHandle { addr, thread })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Join the reactor thread (call after [`ServiceCore::stop`]).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}
