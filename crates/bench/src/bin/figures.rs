//! Regenerates the paper's code figures:
//!
//! * Figure 3 — a randomly generated test case;
//! * Figure 4 — the minimized version of a violating test case, with the
//!   leaking region identified by LFENCE insertion;
//! * Figure 5 — the V1 latency-variant gadget;
//! * §A.6 — the double-load store-bypass variant.

use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use revizor::{gadgets, FuzzerConfig, Postprocessor, Revizor};
use rvz_executor::ExecutorConfig;
use rvz_gen::{GeneratorConfig, ProgramGenerator, Scenario};
use rvz_model::Contract;

fn main() {
    // --- Figure 3: a random test case -----------------------------------
    let generator = ProgramGenerator::new(
        GeneratorConfig::paper_initial().with_basic_blocks(3).with_instructions(10),
    );
    let tc = generator.generate(2022);
    println!("=== Figure 3: randomly generated test case ===");
    println!("{}", tc.to_asm());

    // --- Figure 4: minimized violating test case -------------------------
    // The counterexample comes from a single-cell scenario-pinned campaign
    // matrix (the same shared pool every table bin runs): the cell replays
    // the V1 gadget family with fresh input batches until the analyzer
    // confirms a violation, and the postprocessor then minimizes the
    // recorded counterexample.
    println!("=== Figure 4: minimized Spectre V1 counterexample ===");
    let mut target = Target::target5();
    target.scenario = Some(Scenario::SpectreV1);
    let report = CampaignMatrix::new(11)
        .with_budget(8)
        .add_cell(target.clone(), Contract::ct_seq())
        .run();
    match &report.cells[0].violation {
        Some(v) => {
            let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
                .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
            let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
            let minimized = Postprocessor::new().minimize(&mut fuzzer, &v.test_case, &v.inputs);
            println!("{}", minimized.test_case.to_asm());
            println!(
                "leaking region (block, instruction): {:?}",
                minimized.leaking_region
            );
            println!(
                "inputs: {} -> {} after minimization",
                v.inputs.len(),
                minimized.inputs.len()
            );
        }
        None => println!("(no violation reproduced; rerun with a different seed)"),
    }
    println!();

    // --- Figure 5 and §A.6 ------------------------------------------------
    println!("=== Figure 5: V1 latency variant (V1-var) ===");
    println!("{}", gadgets::v1_var().to_asm());
    println!("=== A.6: store-bypass double-load variant ===");
    println!("{}", gadgets::ssb_double_load().to_asm());
}
