//! # rvz-isa
//!
//! Instruction-set definition for the Revizor reproduction.
//!
//! The paper tests real x86 CPUs and therefore uses the full x86 ISA (via the
//! nanoBench ISA description) for test-case generation and Unicorn for the
//! contract model.  This reproduction substitutes a compact x86-flavoured ISA
//! that is rich enough to express every leak class the paper evaluates:
//!
//! * `AR`  — in-register arithmetic, logic, bitwise and conditional moves;
//! * `MEM` — loads, stores and memory operands;
//! * `VAR` — variable-latency operations (division);
//! * `CB`  — conditional branches;
//! * `IND` — indirect jumps, calls and returns (needed for the handwritten
//!   Spectre V2 / V5-ret gadgets of Table 5).
//!
//! The crate provides:
//!
//! * [`Reg`], [`Flag`], [`Width`], [`Operand`], [`MemOperand`] — the register
//!   file and operand model;
//! * [`Instr`], [`Terminator`], [`BasicBlock`], [`TestCase`] — programs as a
//!   DAG of basic blocks (§5.1 of the paper);
//! * [`catalog`] — the instruction catalog used by the test-case generator,
//!   playing the role of nanoBench's `base.xml`;
//! * [`sandbox`] — the memory-sandbox layout (§5.1, "mask memory addresses to
//!   confine them within a dedicated memory region");
//! * [`builder`] — an ergonomic builder for handwritten gadgets (Table 5).
//!
//! # Example
//!
//! ```
//! use rvz_isa::builder::TestCaseBuilder;
//! use rvz_isa::{Reg, Cond};
//!
//! // A tiny Spectre-V1-shaped program: a bounds check followed by a
//! // dependent memory access.
//! let tc = TestCaseBuilder::new()
//!     .block("entry", |b| {
//!         b.and_imm(Reg::Rax, 0b111111000000);
//!         b.load(Reg::Rbx, Reg::R14, Reg::Rax);
//!         b.cmp_imm(Reg::Rcx, 10);
//!         b.jcc(Cond::B, "in_bounds", "done");
//!     })
//!     .block("in_bounds", |b| {
//!         b.and_imm(Reg::Rbx, 0b111111000000);
//!         b.load(Reg::Rdx, Reg::R14, Reg::Rbx);
//!         b.jmp("done");
//!     })
//!     .block("done", |b| {
//!         b.exit();
//!     })
//!     .build();
//! assert_eq!(tc.blocks().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod catalog;
pub mod decoded;
pub mod input;
pub mod inst;
pub mod operand;
pub mod reg;
pub mod sandbox;
pub mod testcase;

pub use block::{BasicBlock, BlockId, Terminator};
pub use builder::TestCaseBuilder;
pub use catalog::{InstrClass, InstrSpec, IsaSubset};
pub use decoded::{
    DecodeError, DecodedInstr, DecodedOp, DecodedProgram, DecodedTerm, DecodedTerminator, DstOp,
    SrcOp,
};
pub use input::Input;
pub use inst::{AluOp, Cond, Instr, ShiftOp, UnaryOp};
pub use operand::{MemOperand, Operand};
pub use reg::{Flag, FlagSet, Reg, RegSet, Width};
pub use sandbox::SandboxLayout;
pub use testcase::TestCase;
