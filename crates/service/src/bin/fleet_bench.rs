//! fleet-bench: the machine-readable perf trajectory of the elastic
//! fleet, written to `BENCH_fleet.json` so future changes can track
//! throughput without parsing README prose.
//!
//! ```text
//! fleet-bench [--out=BENCH_fleet.json] [--wave-delay-ms=40]
//! ```
//!
//! Two sections:
//!
//! * `matrix_throughput` — the in-process orchestrator baseline (the
//!   criterion bench's 12-cell Table 3 slice, one timed pass each):
//!   sequential per-cell campaigns versus one shared matrix.
//! * `fleet_speedup` — before/after wall-clock for a steal-enabled
//!   two-unit job: once served by a single worker, once with a second
//!   worker registering *mid-job* after replication progress is visible.
//!   Workers stall a fixed delay per wave to model measurement-bound
//!   hosts (this container is single-core, so real compute would
//!   serialize and hide the fleet win; the delay-dominated model makes
//!   the placement effect honest).  Both runs must stay byte-identical
//!   to the in-process run — a speedup that changes verdicts is a bug,
//!   not a result.

use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use rvz_bench::json::Json;
use rvz_bench::report::matrix_cells_json;
use rvz_bench::{flag_from_args, flag_value_from_args};
use rvz_model::Contract;
use rvz_service::{FaultAction, FaultHook, JobSpec, ServiceConfig, ServiceHandle, Worker, WorkerConfig};
use std::time::{Duration, Instant};

const HELP: &str = "fleet-bench: write the elastic-fleet perf trajectory to BENCH_fleet.json

usage: fleet-bench [options]

  --out=PATH           output file (default BENCH_fleet.json)
  --wave-delay-ms=MS   per-wave stall of the modelled slow hosts (default 40)
  -h, --help           this text
";

/// The criterion bench's slice, timed once per shape: 3 targets x 4
/// contracts, budget 24, seed 11.
fn matrix_throughput() -> Json {
    const SEED: u64 = 11;
    const BUDGET: usize = 24;
    let targets = || vec![Target::target1(), Target::target4(), Target::target5()];

    let sequential_start = Instant::now();
    for target in targets() {
        for contract in Contract::table3_contracts() {
            let _ = CampaignMatrix::new(SEED)
                .with_budget(BUDGET)
                .add_cell(target.clone(), contract)
                .run();
        }
    }
    let sequential = sequential_start.elapsed();

    let mut shared = CampaignMatrix::new(SEED).with_budget(BUDGET);
    for target in targets() {
        shared = shared.add_cells(target, Contract::table3_contracts());
    }
    let shared_start = Instant::now();
    let report = shared.run();
    let shared_elapsed = shared_start.elapsed();

    let cells = 3 * Contract::table3_contracts().len();
    Json::obj()
        .field("cells", cells as u64)
        .field("budget", BUDGET as u64)
        .field("seed", SEED)
        .field("test_cases", report.test_cases as u64)
        .field("sequential_per_cell_ms", ms(sequential))
        .field("shared_matrix_ms", ms(shared_elapsed))
        .field("shared_cells_per_sec", cells as f64 / shared_elapsed.as_secs_f64())
        .field("speedup", sequential.as_secs_f64() / shared_elapsed.as_secs_f64())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The two-unit job both fleet runs serve: targets 1 and 4 comply with
/// CT-SEQ, so each group consumes its full budget — two equally sized
/// relocatable units.
fn fleet_spec() -> JobSpec {
    JobSpec::new(7).with_budget(40).add_cell(1, "CT-SEQ").add_cell(4, "CT-SEQ")
}

fn spawn_slow_worker(addr: String, name: &str, wave_delay: Duration) -> std::thread::JoinHandle<()> {
    let mut config = WorkerConfig::new(addr);
    config.name = name.to_string();
    config.retry_for = Duration::from_secs(10);
    std::thread::spawn(move || {
        let hook: FaultHook = Box::new(move |_job, _wave| FaultAction::Delay(wave_delay));
        let _ = Worker::new(config).with_fault_hook(hook).run();
    })
}

/// Serve the job over the fleet; with `join_mid_job`, a second worker
/// registers after the first replicated wave is visible.  Returns the
/// job's wall-clock and whether its verdicts matched the in-process
/// baseline byte for byte.
fn timed_fleet_run(join_mid_job: bool, wave_delay: Duration, baseline: &str) -> (Duration, bool) {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("fleet port bound").to_string();

    let first = spawn_slow_worker(addr.clone(), "fleet-w1", wave_delay);
    let started = Instant::now();
    let job = handle.submit(fleet_spec()).expect("job accepted");
    let mut second = None;
    if join_mid_job {
        // Wait for replication progress (the first wave's events) before
        // the second worker registers: it joins a job already running.
        let deadline = Instant::now() + Duration::from_secs(30);
        while handle.core().status(&job).map(|s| s.events).unwrap_or(0) < 1 {
            assert!(Instant::now() < deadline, "no replication progress within 30s");
            std::thread::sleep(Duration::from_millis(2));
        }
        second = Some(spawn_slow_worker(addr, "fleet-w2", wave_delay));
    }
    let result = handle.wait(&job).expect("job completes");
    let elapsed = started.elapsed();
    let identical = result.get("cells").map(Json::render).as_deref() == Some(baseline);
    handle.shutdown();
    let _ = first.join();
    if let Some(second) = second {
        let _ = second.join();
    }
    (elapsed, identical)
}

fn fleet_speedup(wave_delay: Duration) -> Json {
    let baseline =
        matrix_cells_json(&fleet_spec().to_matrix().expect("spec resolves").run()).render();
    let (solo, solo_identical) = timed_fleet_run(false, wave_delay, &baseline);
    let (joined, joined_identical) = timed_fleet_run(true, wave_delay, &baseline);
    Json::obj()
        .field("units", 2u64)
        .field("wave_delay_ms", ms(wave_delay))
        .field("solo_worker_ms", ms(solo))
        .field("second_worker_joins_mid_job_ms", ms(joined))
        .field("speedup", solo.as_secs_f64() / joined.as_secs_f64())
        .field("verdicts_identical", solo_identical && joined_identical)
}

fn main() {
    if flag_from_args("--help") || flag_from_args("-h") {
        print!("{HELP}");
        return;
    }
    let out = flag_value_from_args::<String>("--out")
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let wave_delay =
        Duration::from_millis(flag_value_from_args::<u64>("--wave-delay-ms").unwrap_or(40));

    eprintln!("fleet-bench: timing the in-process matrix slice...");
    let throughput = matrix_throughput();
    eprintln!("fleet-bench: timing the fleet runs (solo, then join-mid-job)...");
    let speedup = fleet_speedup(wave_delay);
    let doc = Json::obj()
        .field("bench", "fleet")
        .field("matrix_throughput", throughput)
        .field("fleet_speedup", speedup);
    std::fs::write(&out, format!("{}\n", doc.render_pretty())).expect("bench file written");
    eprintln!("fleet-bench: wrote {out}");
    println!("{}", doc.render_pretty());
}
