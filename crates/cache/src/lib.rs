//! # rvz-cache
//!
//! Set-associative cache model and cache side-channel primitives.
//!
//! The paper's executor observes the microarchitectural state through
//! attacks on the L1D cache: Prime+Probe, Flush+Reload and Evict+Reload
//! (§5.3).  This crate provides the cache substrate those attacks run
//! against in the simulated CPU:
//!
//! * [`Cache`] — an LRU set-associative cache (64 sets × 8 ways by default,
//!   matching the L1D of the Skylake/Coffee Lake parts used in the paper);
//! * [`SetVector`] — a 64-bit vector of cache sets, the paper's hardware
//!   trace representation ("a sequence of bits, each representing whether a
//!   specific cache set was accessed", §5.3);
//! * [`probe`] — Prime+Probe / Flush+Reload / Evict+Reload measurement
//!   primitives.
//!
//! # Example
//!
//! ```
//! use rvz_cache::{Cache, CacheConfig};
//! let mut c = Cache::new(CacheConfig::l1d());
//! assert!(!c.access(0x1000));      // cold miss
//! assert!(c.access(0x1000));       // now a hit
//! assert!(c.is_cached(0x1000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod probe;
pub mod set_vector;

pub use model::{Cache, CacheConfig};
pub use probe::{EvictReload, FlushReload, PrimeProbe, SideChannel};
pub use set_vector::SetVector;
