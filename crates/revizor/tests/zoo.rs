//! Predictor-zoo acceptance tests: each zoo scenario detects a contract
//! violation that the default prediction structures cannot produce.
//!
//! These are the acceptance criteria of the zoo cells in the extended
//! Table 3: the leak must require the zoo predictor (scenario-pinned cells
//! stay *compliant* with the default predictor trio), and must violate even
//! the most permissive CT contract (the speculation is invisible to every
//! contract model — none of them speculates indirect jumps, returns or
//! predictor history).

use rvz_model::Contract;
use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use rvz_uarch::PredictorConfig;

/// Run one (target, contract) cell with a small budget.
fn run_cell(target: Target, contract: Contract, budget: usize) -> bool {
    let report = CampaignMatrix::new(7)
        .with_budget(budget)
        .add_cell(target, contract)
        .run();
    report.cells[0].found()
}

/// The same target with the predictor zoo swapped back out for the default
/// trio (the scenario pin stays).
fn with_default_predictors(mut target: Target) -> Target {
    target.cpu_config.predictors = PredictorConfig::default();
    target
}

#[test]
fn btb_aliasing_v2_violates_even_ct_cond_bpas() {
    assert!(
        run_cell(Target::target11(), Contract::ct_cond_bpas(), 10),
        "the aliasing BTB must leak through the victim's stale prediction"
    );
}

#[test]
fn btb_aliasing_v2_is_compliant_on_the_default_btb() {
    for contract in Contract::table3_contracts() {
        assert!(
            !run_cell(with_default_predictors(Target::target11()), contract.clone(), 10),
            "the last-target BTB keeps the sites separate ({})",
            contract.name()
        );
    }
}

#[test]
fn deep_rsb_chain_violates_even_ct_cond_bpas() {
    assert!(
        run_cell(Target::target12(), Contract::ct_cond_bpas(), 10),
        "the cyclic RSB must serve stale return targets past its capacity"
    );
}

#[test]
fn deep_rsb_chain_is_compliant_on_the_default_rsb() {
    for contract in Contract::table3_contracts() {
        assert!(
            !run_cell(with_default_predictors(Target::target12()), contract.clone(), 10),
            "the stack RSB predicts nothing on underflow ({})",
            contract.name()
        );
    }
}

#[test]
fn predictor_state_leak_fires_on_history_free_bimodal_only() {
    // On the default history-free bimodal, the victim branch's direction
    // keeps flipping with the priming inputs' RAX classes, so it keeps
    // mispredicting and transiently leaks an RBX-derived address through
    // the wrong arm: a CT-SEQ violation.
    assert!(
        run_cell(with_default_predictors(Target::target13()), Contract::ct_seq(), 10),
        "the history-free bimodal cannot predict the history-correlated branch"
    );
    // TAGE records the invisible feeder branch in its global history; the
    // victim branch is then perfectly predictable, so the same scenario is
    // compliant under every contract — the leak is pure predictor state.
    for contract in Contract::table3_contracts() {
        assert!(
            !run_cell(Target::target13(), contract.clone(), 10),
            "TAGE's history tracks the feeder-correlated branch ({})",
            contract.name()
        );
    }
}

#[test]
fn tage_and_loop_fuzzing_targets_surface_v1() {
    // Targets 9 and 10 fuzz random AR+MEM+CB programs like Target 5, just
    // with different direction predictors: Spectre V1 must still surface
    // under the contracts that do not permit conditional speculation.
    assert!(run_cell(Target::target9(), Contract::ct_seq(), 120), "TAGE target finds V1");
    assert!(run_cell(Target::target10(), Contract::ct_seq(), 120), "loop target finds V1");
}

#[test]
fn zoo_matrix_extends_table3_without_touching_it() {
    let classic = CampaignMatrix::table3(3);
    let zoo = CampaignMatrix::table3_zoo(3);
    assert_eq!(classic.cells().len(), 32);
    assert_eq!(zoo.cells().len(), 52);
    for (a, b) in classic.cells().iter().zip(zoo.cells()) {
        assert_eq!(a.target, b.target);
        assert_eq!(a.contract.name(), b.contract.name());
    }
}
