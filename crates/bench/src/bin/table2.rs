//! Regenerates Table 2: description of the experimental setups.

use revizor::targets::Target;
use rvz_bench::row;

fn main() {
    println!("Table 2: Description of the experimental setups");
    println!();
    let widths = [10, 28, 16, 22, 14];
    println!(
        "{}",
        row(
            &[
                "Target".into(),
                "CPU".into(),
                "ISA subset".into(),
                "Executor mode".into(),
                "#instructions".into()
            ],
            &widths
        )
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    for t in Target::all() {
        println!(
            "{}",
            row(
                &[
                    format!("Target {}", t.id),
                    t.cpu_config.name.clone(),
                    t.isa.name(),
                    format!("{}", t.mode),
                    format!("{}", t.isa.instruction_count()),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "(#instructions is the number of unique catalog entries in this reproduction's ISA; \
         the paper reports 325-719 unique x86 instructions for the corresponding subsets.)"
    );
}
