//! Measures what the static speculation pre-filter saves: for every
//! Table 3 target, the number of test cases *measured* (model + hardware
//! passes) until the first CT-SEQ violation — or until the budget runs out
//! on non-violating targets — with the filter off and on.
//!
//! Usage: `cargo run --release -p rvz-bench --bin filter_effectiveness [budget]`
//!
//! Both runs share the same matrix seed, so the filter-on run sees the
//! exact same test-case stream and (soundness) reports the exact same first
//! violation; only the measured count shrinks.

use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, row};
use rvz_model::Contract;

fn main() {
    let budget = budget_from_args(60);
    let seed = 7;

    println!("Static pre-filter effectiveness (budget {budget} test cases per target, seed {seed})");
    println!("  'measured' = test cases that reached the model/hardware pipeline before the");
    println!("  first CT-SEQ violation (or the full budget when no violation exists).");
    println!();
    let widths = [10, 22, 22, 22, 12];
    println!(
        "{}",
        row(
            &["target", "verdict", "measured (no filter)", "measured (filter)", "saved"]
                .map(String::from),
            &widths
        )
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));

    for target in Target::all() {
        let run = |filter: bool| {
            CampaignMatrix::new(seed)
                .with_budget(budget)
                .with_speculation_filter(filter)
                .add_cell(target.clone(), Contract::ct_seq())
                .run()
        };
        let off = run(false);
        let on = run(true);
        let (off_cell, on_cell) = (&off.cells[0], &on.cells[0]);
        assert_eq!(
            off_cell.vulnerability().map(|v| v.to_string()),
            on_cell.vulnerability().map(|v| v.to_string()),
            "the filter must not change the verdict of target {}",
            target.id
        );
        let verdict = match off_cell.vulnerability() {
            Some(v) => format!("violation ({v})"),
            None if off_cell.found() => "violation".to_string(),
            None => "none".to_string(),
        };
        let saved = off_cell.test_cases.saturating_sub(on_cell.test_cases);
        let pct = if off_cell.test_cases > 0 {
            100.0 * saved as f64 / off_cell.test_cases as f64
        } else {
            0.0
        };
        println!(
            "{}",
            row(
                &[
                    format!("Target {}", target.id),
                    verdict,
                    format!("{}", off_cell.test_cases),
                    format!("{} (+{} filtered)", on_cell.test_cases, on_cell.filtered),
                    format!("{pct:.0}%"),
                ],
                &widths
            )
        );
    }
}
