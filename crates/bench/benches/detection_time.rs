//! Criterion bench for detection latency on handwritten gadgets (the
//! quantity behind Tables 4 and 5): how long the full pipeline needs to
//! confirm a violation for each known vulnerability.

use criterion::{criterion_group, criterion_main, Criterion};
use revizor::detection::inputs_to_violation;
use revizor::gadgets;
use revizor::targets::Target;
use rvz_model::Contract;

fn bench_gadget_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("gadget_detection");
    group.sample_size(10);

    let cases: Vec<(&str, rvz_isa::TestCase, Target)> = vec![
        ("spectre_v1_target5", gadgets::spectre_v1(), Target::target5()),
        ("spectre_v4_target2", gadgets::spectre_v4(), Target::target2()),
        ("mds_lfb_target7", gadgets::mds_lfb(), Target::target7()),
        ("lvi_null_target8", gadgets::lvi_null(), Target::target8()),
    ];
    for (name, gadget, target) in cases {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                inputs_to_violation(&target, Contract::ct_seq(), &gadget, seed, 150)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gadget_detection);
criterion_main!(benches);
