//! Contract traces.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// One contract-prescribed observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Observation {
    /// Address of a data load or store (`MEM`, `CT`, `ARCH`).
    MemAddr(u64),
    /// Program counter of an executed instruction (`CT`, `ARCH`).
    Pc(u64),
    /// Value returned by a load (`ARCH` only).
    LoadValue(u64),
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::MemAddr(a) => write!(f, "mem:{a:#x}"),
            Observation::Pc(a) => write!(f, "pc:{a:#x}"),
            Observation::LoadValue(v) => write!(f, "val:{v:#x}"),
        }
    }
}

/// A contract trace: the ordered sequence of observations the contract
/// permits an attacker to make during one execution (`CTrace` in §2.2).
///
/// Equality of contract traces defines the *input classes* of the relational
/// analysis, so `CTrace` implements `Eq`/`Hash` and caches a digest for fast
/// grouping of the large input sets used during fuzzing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CTrace {
    observations: Vec<Observation>,
    digest: u64,
}

impl CTrace {
    /// Build a trace from observations.
    pub fn new(observations: Vec<Observation>) -> CTrace {
        let digest = Self::compute_digest(&observations);
        CTrace { observations, digest }
    }

    /// The empty trace.
    pub fn empty() -> CTrace {
        CTrace::new(Vec::new())
    }

    fn compute_digest(observations: &[Observation]) -> u64 {
        // FNV-1a over a canonical byte encoding of the observations.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for o in observations {
            let (tag, v) = match o {
                Observation::MemAddr(a) => (1u8, *a),
                Observation::Pc(a) => (2u8, *a),
                Observation::LoadValue(a) => (3u8, *a),
            };
            mix(tag);
            for b in v.to_le_bytes() {
                mix(b);
            }
        }
        h
    }

    /// The observations in order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Cached digest of the trace (used as the input-class key).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Memory-address observations only.
    pub fn mem_addrs(&self) -> Vec<u64> {
        self.observations
            .iter()
            .filter_map(|o| match o {
                Observation::MemAddr(a) => Some(*a),
                _ => None,
            })
            .collect()
    }
}

impl PartialEq for CTrace {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.observations == other.observations
    }
}

impl Eq for CTrace {}

impl Hash for CTrace {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.digest.hash(state);
    }
}

impl fmt::Display for CTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, o) in self.observations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Observation> for CTrace {
    fn from_iter<T: IntoIterator<Item = Observation>>(iter: T) -> CTrace {
        CTrace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hash_by_content() {
        let a = CTrace::new(vec![Observation::MemAddr(0x110), Observation::MemAddr(0x220)]);
        let b = CTrace::new(vec![Observation::MemAddr(0x110), Observation::MemAddr(0x220)]);
        let c = CTrace::new(vec![Observation::MemAddr(0x110), Observation::MemAddr(0x230)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn order_matters() {
        let a = CTrace::new(vec![Observation::MemAddr(1), Observation::MemAddr(2)]);
        let b = CTrace::new(vec![Observation::MemAddr(2), Observation::MemAddr(1)]);
        assert_ne!(a, b);
    }

    #[test]
    fn observation_kind_matters() {
        let a = CTrace::new(vec![Observation::MemAddr(5)]);
        let b = CTrace::new(vec![Observation::Pc(5)]);
        let c = CTrace::new(vec![Observation::LoadValue(5)]);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn display_format() {
        let t = CTrace::new(vec![Observation::MemAddr(0x110), Observation::Pc(0x4000)]);
        assert_eq!(format!("{t}"), "[mem:0x110, pc:0x4000]");
        assert_eq!(format!("{}", CTrace::empty()), "[]");
    }

    #[test]
    fn mem_addrs_filter() {
        let t = CTrace::new(vec![
            Observation::Pc(1),
            Observation::MemAddr(0x100),
            Observation::LoadValue(7),
            Observation::MemAddr(0x200),
        ]);
        assert_eq!(t.mem_addrs(), vec![0x100, 0x200]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let t: CTrace = vec![Observation::Pc(3)].into_iter().collect();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn digest_is_stable() {
        let a = CTrace::new(vec![Observation::MemAddr(42)]);
        let b = CTrace::new(vec![Observation::MemAddr(42)]);
        assert_eq!(a.digest(), b.digest());
    }
}
