//! A small hand-rolled JSON tree, writer and parser.
//!
//! The vendored `serde` stand-ins have no-op derives (the build environment
//! is offline), so machine-readable output from the table binaries is built
//! explicitly through this module: construct a [`Json`] tree, [`Json::render`]
//! it.  The parser exists so that smoke tests (and CI) can validate that
//! emitted documents round-trip; it accepts exactly the subset the writer
//! produces (objects, arrays, strings with `\uXXXX` escapes, finite
//! numbers, booleans, null).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered without a trailing `.0` when integral).
    Num(f64),
    /// A non-negative integer, kept exact (an `f64` detour would corrupt
    /// values above 2^53 — campaign seeds are arbitrary `u64`s).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            // The two numeric variants compare by value: `7` round-trips
            // to `UInt(7)` no matter which variant wrote it.
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            (Json::Num(a), Json::UInt(b)) | (Json::UInt(b), Json::Num(a)) => *a == *b as f64,
            _ => false,
        }
    }
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert a field into an object (panics on non-objects — construction
    /// is always code-driven).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value of a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value of a number (exact integers are converted; values above
    /// 2^53 should be read with [`Json::as_u64`] instead).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The exact value of a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value of a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0, false);
        out
    }

    /// Render the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0, false);
        out
    }

    /// Render the value as a compact, pure-ASCII document: every non-ASCII
    /// character is written as a `\uXXXX` escape, non-BMP characters as a
    /// UTF-16 surrogate pair (the `ensure_ascii` form most JSON emitters
    /// produce).  [`parse`] round-trips both this and [`Json::render`].
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0, true);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize, ascii: bool) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::UInt(n) => out.push_str(&format!("{n}")),
            Json::Str(s) => write_escaped(out, s, ascii),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1, ascii);
                }
                if !items.is_empty() {
                    out.push_str(nl);
                    out.push_str(&pad);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key, ascii);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1, ascii);
                }
                if !fields.is_empty() {
                    out.push_str(nl);
                    out.push_str(&pad);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<u8> for Json {
    fn from(n: u8) -> Json {
        Json::UInt(u64::from(n))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(out: &mut String, s: &str, ascii: bool) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c if ascii && !c.is_ascii() => {
                // Escape as UTF-16 code units: one `\uXXXX` for BMP
                // characters, a surrogate pair for the rest.
                for unit in c.encode_utf16(&mut [0u16; 2]) {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (the subset the writer emits).
///
/// # Errors
/// Returns a human-readable message with the byte offset of the first
/// syntax error, or on trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    /// Consume a `uXXXX` escape body (the cursor sits on the `u`) and
    /// return the code unit.  `start` is the byte offset of the escape's
    /// backslash, for error messages.
    fn hex4(&mut self, start: usize) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or(format!("bad \\u escape at byte {start}"))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {start}"))?;
        self.pos += 5;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            // `self.pos` sits on the `u`; `hex4` consumes it
                            // and the four hex digits.
                            let code = self.hex4(start)?;
                            match code {
                                // A high surrogate must be followed by an
                                // escaped low surrogate; together they
                                // encode one non-BMP scalar (RFC 8259 §7).
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(format!(
                                            "lone high surrogate \\u{code:04x} at byte {start} \
                                             (expected a \\uDC00-\\uDFFF low surrogate)"
                                        ));
                                    }
                                    self.pos += 1; // consume the backslash
                                    let low = self.hex4(start)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(format!(
                                            "high surrogate \\u{code:04x} at byte {start} followed \
                                             by \\u{low:04x}, which is not a low surrogate"
                                        ));
                                    }
                                    let scalar =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(scalar)
                                            .expect("paired surrogates form a valid scalar"),
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!(
                                        "lone low surrogate \\u{code:04x} at byte {start} \
                                         (low surrogates may only follow a high surrogate)"
                                    ));
                                }
                                _ => out.push(
                                    char::from_u32(code)
                                        .expect("non-surrogate BMP code points are scalars"),
                                ),
                            }
                            // The shared `self.pos += 1` below accounted for
                            // the single-byte escapes; `hex4` already
                            // consumed everything, so compensate.
                            self.pos -= 1;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the whole run of ordinary characters up to
                    // the next quote or backslash.  (Validating the entire
                    // remaining input per character, as a naive
                    // one-scalar-at-a-time loop does, is quadratic — it
                    // took ~450ms per 180KB checkpoint transfer in the
                    // multi-host service.)  `"` and `\` are ASCII, so the
                    // cut is always a char boundary of the source &str.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        // Plain non-negative integers stay exact (u64 campaign seeds would
        // be corrupted by an f64 detour above 2^53).
        if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or(format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_compact_and_pretty() {
        let doc = Json::obj()
            .field("name", "table3")
            .field("cells", vec![1usize, 2, 3])
            .field("ok", true)
            .field("missing", Json::Null);
        assert_eq!(doc.render(), r#"{"name":"table3","cells":[1,2,3],"ok":true,"missing":null}"#);
        assert!(doc.render_pretty().contains("\n  \"name\": \"table3\""));
    }

    #[test]
    fn numbers_render_integral_when_integral() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn u64_values_survive_exactly() {
        // Seeds are arbitrary u64s; values above 2^53 must not be rounded
        // through f64 on either the write or the parse path.
        let seed = 0x9E37_79B9_7F4A_7C15u64; // 11400714819323198485
        let doc = Json::obj().field("seed", seed);
        let rendered = doc.render();
        assert!(rendered.contains("11400714819323198485"), "{rendered}");
        let parsed = parse(&rendered).unwrap();
        assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(seed));
        assert_eq!(parsed, doc);
    }

    #[test]
    fn numeric_variants_compare_by_value() {
        assert_eq!(Json::Num(7.0), Json::UInt(7));
        assert_eq!(Json::UInt(7), Json::Num(7.0));
        assert_ne!(Json::Num(7.5), Json::UInt(7));
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\n\u{1}".into()).render(), r#""a\"b\\c\n\u0001""#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj()
            .field("budget", 200usize)
            .field("vulnerability", Json::Null)
            .field("label", "CT-COND-BPAS \"quoted\"\n")
            .field(
                "cells",
                Json::Arr(vec![
                    Json::obj().field("found", true).field("duration_ms", 12.25),
                    Json::obj().field("found", false).field("duration_ms", 3usize),
                ]),
            );
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": [1, "x", true], "b": null}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[1].as_str(), Some("x"));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[2].as_bool(), Some(true));
        assert_eq!(doc.get("b"), Some(&Json::Null));
        assert_eq!(doc.get("c"), None);
    }

    #[test]
    fn unicode_survives_the_round_trip() {
        let doc = Json::Str("ünïcodé × контракт".into());
        assert_eq!(parse(&doc.render()).unwrap(), doc);
        assert_eq!(parse(&doc.render_ascii()).unwrap(), doc);
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_scalars() {
        // Exactly what serde_json (and Python's json with ensure_ascii)
        // emits for an emoji.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse(r#""a😀b""#).unwrap(), Json::Str("a😀b".into()));
        // U+10FFFF, the last scalar, and U+10000, the first non-BMP one.
        assert_eq!(parse(r#""􏿿""#).unwrap(), Json::Str("\u{10FFFF}".into()));
        assert_eq!(parse(r#""𐀀""#).unwrap(), Json::Str("\u{10000}".into()));
    }

    #[test]
    fn render_ascii_emits_surrogate_pairs() {
        assert_eq!(Json::Str("😀".into()).render_ascii(), r#""\ud83d\ude00""#);
        assert_eq!(Json::Str("é".into()).render_ascii(), r#""\u00e9""#);
        // ASCII passes through untouched, control characters stay escaped.
        assert_eq!(Json::Str("a\n".into()).render_ascii(), r#""a\n""#);
    }

    #[test]
    fn lone_surrogates_are_rejected_with_clear_messages() {
        let err = parse(r#""\ud83d""#).unwrap_err();
        assert!(err.contains("lone high surrogate"), "{err}");
        let err = parse(r#""\ude00""#).unwrap_err();
        assert!(err.contains("lone low surrogate"), "{err}");
        // High surrogate followed by a non-surrogate escape.
        let err = parse(r#""\ud83d\u0041""#).unwrap_err();
        assert!(err.contains("not a low surrogate"), "{err}");
        // High surrogate followed by a plain character.
        let err = parse(r#""\ud83dx""#).unwrap_err();
        assert!(err.contains("lone high surrogate"), "{err}");
        // Truncated second escape.
        assert!(parse(r#""\ud83d\u00""#).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary scalar values including the interesting boundaries:
        /// ASCII, escape-worthy controls, BMP edges and non-BMP planes.
        fn char_from_code(code: u32) -> char {
            char::from_u32(code).unwrap_or('\u{FFFD}')
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            /// Writer ↔ parser round-trip over arbitrary Unicode strings,
            /// through both the raw-UTF-8 and the ASCII-escaped renderings
            /// (the latter exercises the surrogate-pair path for every
            /// non-BMP character).
            #[test]
            fn arbitrary_unicode_strings_round_trip(
                codes in proptest::collection::vec(0u32..0x110000, 0..24),
            ) {
                let s: String = codes.into_iter().map(char_from_code).collect();
                let doc = Json::obj().field("s", s.clone()).field("k", vec![s]);
                prop_assert_eq!(&parse(&doc.render()).unwrap(), &doc);
                prop_assert_eq!(&parse(&doc.render_pretty()).unwrap(), &doc);
                let ascii = doc.render_ascii();
                prop_assert!(ascii.is_ascii(), "render_ascii must emit pure ASCII: {}", ascii);
                prop_assert_eq!(&parse(&ascii).unwrap(), &doc);
            }

            /// Deliberately include the BMP/astral boundary characters with
            /// high probability.
            #[test]
            fn boundary_characters_round_trip(pick in 0usize..7) {
                let c = ['\u{7F}', '\u{80}', '\u{D7FF}', '\u{E000}', '\u{FFFF}', '\u{10000}', '\u{10FFFF}'][pick];
                let doc = Json::Str(c.to_string());
                prop_assert_eq!(&parse(&doc.render()).unwrap(), &doc);
                prop_assert_eq!(&parse(&doc.render_ascii()).unwrap(), &doc);
            }
        }
    }
}
