//! Regenerates Table 3: detected contract violations for every target and
//! every CT-* contract.
//!
//! Usage: `cargo run --release -p rvz-bench --bin table3 [test-case budget per cell]`
//!
//! The paper fuzzes each cell for 24 hours or until the first violation; the
//! default budget here is sized for a simulator run of a few minutes.  The
//! rare latency variants of Targets 3 and 6 may need a larger budget, just
//! as the paper's artifact notes that they are hard to reproduce.

use revizor::detection::detection_time;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, fmt_duration, row};
use rvz_model::Contract;

fn main() {
    let budget = budget_from_args(200);
    println!("Table 3: testing results (budget: {budget} test cases per cell)");
    println!("  check mark = violation detected (vulnerability, time); x = no violation within budget");
    println!();

    let contracts = Contract::table3_contracts();
    let widths = [14, 26, 26, 26, 26];
    let mut header = vec!["".to_string()];
    header.extend(contracts.iter().map(|c| c.name()));
    println!("{}", row(&header, &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));

    let mut matches = 0usize;
    let mut cells = 0usize;
    for target in Target::all() {
        let mut line = vec![format!("Target {}", target.id)];
        for contract in &contracts {
            let outcome = detection_time(&target, contract.clone(), 3, budget);
            let expected = target.paper_expects_violation(&contract.name());
            cells += 1;
            if outcome.found == expected {
                matches += 1;
            }
            let cell = if outcome.found {
                format!(
                    "YES ({}, {})",
                    outcome.vulnerability.as_deref().unwrap_or("?"),
                    fmt_duration(outcome.duration)
                )
            } else {
                format!("no  ({} tcs)", outcome.test_cases)
            };
            let marker = if outcome.found == expected { "" } else { " [differs from paper]" };
            line.push(format!("{cell}{marker}"));
        }
        println!("{}", row(&line, &widths));
    }

    println!();
    println!(
        "Agreement with the paper's Table 3: {matches}/{cells} cells \
         (cells marked 'differs' usually correspond to the rare V1-var/V4-var variants, \
         which the paper's artifact also describes as hard to reproduce)."
    );
}
