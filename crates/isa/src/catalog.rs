//! Instruction catalog and ISA subsets.
//!
//! Plays the role of nanoBench's `base.xml` in the original tool: a machine-
//! readable description of the instructions the test-case generator may
//! sample from, grouped into the classes used throughout the paper's
//! evaluation (§6.1): `AR`, `MEM`, `VAR`, `CB` (plus `IND` for the
//! handwritten Table 5 gadgets).

use crate::inst::{AluOp, Cond, ShiftOp, UnaryOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Instruction class, following the paper's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// In-register arithmetic, logic and bitwise operations.
    Ar,
    /// Instructions with memory operands (loads and stores).
    Mem,
    /// Variable-latency operations (division).
    Var,
    /// Conditional branches.
    Cb,
    /// Indirect control flow (indirect jumps, calls, returns).
    Ind,
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Ar => "AR",
            InstrClass::Mem => "MEM",
            InstrClass::Var => "VAR",
            InstrClass::Cb => "CB",
            InstrClass::Ind => "IND",
        };
        f.write_str(s)
    }
}

/// The syntactic form of a catalog entry; the generator instantiates the
/// form with concrete registers, immediates and sandbox offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InstrForm {
    AluRegReg(AluOp),
    AluRegImm(AluOp),
    /// ALU with a memory source operand (a load).
    AluRegMem(AluOp),
    /// ALU with a memory destination (a read-modify-write store).
    AluMemReg(AluOp),
    AluMemImm(AluOp),
    MovRegReg,
    MovRegImm,
    /// Load.
    MovRegMem,
    /// Store from a register.
    MovMemReg,
    /// Store an immediate.
    MovMemImm,
    CmovRegReg(Cond),
    /// Conditional load.
    CmovRegMem(Cond),
    SetccReg(Cond),
    CmpRegReg,
    CmpRegImm,
    CmpRegMem,
    TestRegReg,
    TestRegImm,
    ShiftRegImm(ShiftOp),
    UnaryReg(UnaryOp),
    UnaryMem(UnaryOp),
    /// Unsigned division by a register.
    DivReg,
    /// Unsigned division by a memory operand.
    DivMem,
    ImulRegReg,
    ImulRegImm,
    ImulRegMem,
    LeaReg,
    BswapReg,
    XchgRegReg,
    Nop,
    /// Conditional jump terminator.
    CondJmp(Cond),
    /// Unconditional jump terminator.
    Jmp,
    /// Indirect jump terminator.
    IndirectJmp,
    /// Call terminator.
    Call,
    /// Return terminator.
    Ret,
}

impl InstrForm {
    /// Does this form terminate a basic block?
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            InstrForm::CondJmp(_)
                | InstrForm::Jmp
                | InstrForm::IndirectJmp
                | InstrForm::Call
                | InstrForm::Ret
        )
    }

    /// Does this form access memory?
    pub fn accesses_mem(self) -> bool {
        matches!(
            self,
            InstrForm::AluRegMem(_)
                | InstrForm::AluMemReg(_)
                | InstrForm::AluMemImm(_)
                | InstrForm::MovRegMem
                | InstrForm::MovMemReg
                | InstrForm::MovMemImm
                | InstrForm::CmovRegMem(_)
                | InstrForm::CmpRegMem
                | InstrForm::UnaryMem(_)
                | InstrForm::DivMem
                | InstrForm::ImulRegMem
        )
    }
}

/// One entry of the instruction catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InstrSpec {
    /// Human-readable name (mnemonic plus operand shape).
    pub name: &'static str,
    /// Instruction class.
    pub class: InstrClass,
    /// Syntactic form to instantiate.
    pub form: InstrForm,
}

/// A subset of the ISA used for one testing target (Table 2, row 3).
///
/// # Example
/// ```
/// use rvz_isa::IsaSubset;
/// let s = IsaSubset::AR_MEM_CB;
/// assert!(s.ar && s.mem && s.cb && !s.var);
/// assert!(IsaSubset::AR.instruction_count() < s.instruction_count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IsaSubset {
    /// Include in-register arithmetic.
    pub ar: bool,
    /// Include memory operands and loads/stores.
    pub mem: bool,
    /// Include variable-latency operations.
    pub var: bool,
    /// Include conditional branches.
    pub cb: bool,
    /// Include indirect control flow.
    pub ind: bool,
}

impl IsaSubset {
    /// `AR`: in-register arithmetic only.
    pub const AR: IsaSubset = IsaSubset { ar: true, mem: false, var: false, cb: false, ind: false };
    /// `AR+MEM`.
    pub const AR_MEM: IsaSubset =
        IsaSubset { ar: true, mem: true, var: false, cb: false, ind: false };
    /// `AR+MEM+VAR`.
    pub const AR_MEM_VAR: IsaSubset =
        IsaSubset { ar: true, mem: true, var: true, cb: false, ind: false };
    /// `AR+CB`.
    pub const AR_CB: IsaSubset =
        IsaSubset { ar: true, mem: false, var: false, cb: true, ind: false };
    /// `AR+MEM+CB`.
    pub const AR_MEM_CB: IsaSubset =
        IsaSubset { ar: true, mem: true, var: false, cb: true, ind: false };
    /// `AR+MEM+CB+VAR`.
    pub const AR_MEM_CB_VAR: IsaSubset =
        IsaSubset { ar: true, mem: true, var: true, cb: true, ind: false };
    /// Everything, including indirect control flow.
    pub const FULL: IsaSubset = IsaSubset { ar: true, mem: true, var: true, cb: true, ind: true };

    /// Does the subset contain the given class?
    pub fn contains(&self, class: InstrClass) -> bool {
        match class {
            InstrClass::Ar => self.ar,
            InstrClass::Mem => self.mem,
            InstrClass::Var => self.var,
            InstrClass::Cb => self.cb,
            InstrClass::Ind => self.ind,
        }
    }

    /// Catalog entries belonging to this subset.
    pub fn specs(&self) -> Vec<InstrSpec> {
        catalog().into_iter().filter(|s| self.contains(s.class)).collect()
    }

    /// Body (non-terminator) catalog entries belonging to this subset.
    pub fn body_specs(&self) -> Vec<InstrSpec> {
        self.specs().into_iter().filter(|s| !s.form.is_terminator()).collect()
    }

    /// Number of unique catalog entries in this subset (the analogue of the
    /// per-subset instruction counts reported in §6.1).
    pub fn instruction_count(&self) -> usize {
        self.specs().len()
    }

    /// Short name, e.g. `AR+MEM+CB`.
    pub fn name(&self) -> String {
        let mut parts = Vec::new();
        if self.ar {
            parts.push("AR");
        }
        if self.mem {
            parts.push("MEM");
        }
        if self.cb {
            parts.push("CB");
        }
        if self.var {
            parts.push("VAR");
        }
        if self.ind {
            parts.push("IND");
        }
        if parts.is_empty() {
            "EMPTY".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl fmt::Display for IsaSubset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl Default for IsaSubset {
    fn default() -> Self {
        IsaSubset::AR_MEM_CB
    }
}

/// The full instruction catalog.
///
/// The entry count is intentionally in the hundreds — like the x86 subsets in
/// the paper — so that the generator's sampling problem has a comparable
/// shape, even though the concrete ISA is smaller.
pub fn catalog() -> Vec<InstrSpec> {
    let mut v = Vec::new();
    let mut push = |name: &'static str, class: InstrClass, form: InstrForm| {
        v.push(InstrSpec { name, class, form });
    };

    // --- AR: register-register / register-immediate arithmetic ------------
    for op in AluOp::ALL {
        push(alu_name(op, "r, r"), InstrClass::Ar, InstrForm::AluRegReg(op));
        push(alu_name(op, "r, imm"), InstrClass::Ar, InstrForm::AluRegImm(op));
    }
    push("MOV r, r", InstrClass::Ar, InstrForm::MovRegReg);
    push("MOV r, imm", InstrClass::Ar, InstrForm::MovRegImm);
    for cond in Cond::ALL {
        push(cond_name("CMOV", cond, " r, r"), InstrClass::Ar, InstrForm::CmovRegReg(cond));
        push(cond_name("SET", cond, " r8"), InstrClass::Ar, InstrForm::SetccReg(cond));
    }
    push("CMP r, r", InstrClass::Ar, InstrForm::CmpRegReg);
    push("CMP r, imm", InstrClass::Ar, InstrForm::CmpRegImm);
    push("TEST r, r", InstrClass::Ar, InstrForm::TestRegReg);
    push("TEST r, imm", InstrClass::Ar, InstrForm::TestRegImm);
    for op in ShiftOp::ALL {
        push(shift_name(op), InstrClass::Ar, InstrForm::ShiftRegImm(op));
    }
    for op in UnaryOp::ALL {
        push(unary_name(op, "r"), InstrClass::Ar, InstrForm::UnaryReg(op));
    }
    push("IMUL r, r", InstrClass::Ar, InstrForm::ImulRegReg);
    push("IMUL r, imm", InstrClass::Ar, InstrForm::ImulRegImm);
    push("LEA r, [..]", InstrClass::Ar, InstrForm::LeaReg);
    push("BSWAP r", InstrClass::Ar, InstrForm::BswapReg);
    push("XCHG r, r", InstrClass::Ar, InstrForm::XchgRegReg);
    push("NOP", InstrClass::Ar, InstrForm::Nop);

    // --- MEM: memory operands ---------------------------------------------
    for op in AluOp::ALL {
        push(alu_name(op, "r, [m]"), InstrClass::Mem, InstrForm::AluRegMem(op));
        push(alu_name(op, "[m], r"), InstrClass::Mem, InstrForm::AluMemReg(op));
        push(alu_name(op, "[m], imm"), InstrClass::Mem, InstrForm::AluMemImm(op));
    }
    push("MOV r, [m]", InstrClass::Mem, InstrForm::MovRegMem);
    push("MOV [m], r", InstrClass::Mem, InstrForm::MovMemReg);
    push("MOV [m], imm", InstrClass::Mem, InstrForm::MovMemImm);
    for cond in Cond::ALL {
        push(cond_name("CMOV", cond, " r, [m]"), InstrClass::Mem, InstrForm::CmovRegMem(cond));
    }
    push("CMP r, [m]", InstrClass::Mem, InstrForm::CmpRegMem);
    for op in UnaryOp::ALL {
        push(unary_name(op, "[m]"), InstrClass::Mem, InstrForm::UnaryMem(op));
    }
    push("IMUL r, [m]", InstrClass::Mem, InstrForm::ImulRegMem);

    // --- VAR: variable latency ---------------------------------------------
    push("DIV r", InstrClass::Var, InstrForm::DivReg);
    push("DIV [m]", InstrClass::Var, InstrForm::DivMem);

    // --- CB: conditional branches -------------------------------------------
    for cond in Cond::ALL {
        push(cond_name("J", cond, " rel"), InstrClass::Cb, InstrForm::CondJmp(cond));
    }
    push("JMP rel", InstrClass::Cb, InstrForm::Jmp);

    // --- IND: indirect control flow ----------------------------------------
    push("JMP r", InstrClass::Ind, InstrForm::IndirectJmp);
    push("CALL rel", InstrClass::Ind, InstrForm::Call);
    push("RET", InstrClass::Ind, InstrForm::Ret);

    v
}

fn alu_name(op: AluOp, shape: &'static str) -> &'static str {
    // Leak a small number of interned strings; the catalog is built rarely.
    Box::leak(format!("{} {}", op.mnemonic(), shape).into_boxed_str())
}

fn cond_name(prefix: &'static str, cond: Cond, shape: &'static str) -> &'static str {
    Box::leak(format!("{}{}{}", prefix, cond.suffix(), shape).into_boxed_str())
}

fn shift_name(op: ShiftOp) -> &'static str {
    Box::leak(format!("{} r, imm", op.mnemonic()).into_boxed_str())
}

fn unary_name(op: UnaryOp, shape: &'static str) -> &'static str {
    Box::leak(format!("{} {}", op.mnemonic(), shape).into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nonempty_and_classified() {
        let cat = catalog();
        assert!(cat.len() > 100, "catalog should have hundreds of entries, got {}", cat.len());
        assert!(cat.iter().any(|s| s.class == InstrClass::Ar));
        assert!(cat.iter().any(|s| s.class == InstrClass::Mem));
        assert!(cat.iter().any(|s| s.class == InstrClass::Var));
        assert!(cat.iter().any(|s| s.class == InstrClass::Cb));
        assert!(cat.iter().any(|s| s.class == InstrClass::Ind));
    }

    #[test]
    fn subsets_are_monotone() {
        let ar = IsaSubset::AR.instruction_count();
        let ar_mem = IsaSubset::AR_MEM.instruction_count();
        let ar_mem_var = IsaSubset::AR_MEM_VAR.instruction_count();
        let ar_mem_cb = IsaSubset::AR_MEM_CB.instruction_count();
        let full = IsaSubset::FULL.instruction_count();
        assert!(ar < ar_mem);
        assert!(ar_mem < ar_mem_var);
        assert!(ar_mem < ar_mem_cb);
        assert!(ar_mem_cb < full);
    }

    #[test]
    fn subset_names() {
        assert_eq!(IsaSubset::AR.name(), "AR");
        assert_eq!(IsaSubset::AR_MEM_CB.name(), "AR+MEM+CB");
        assert_eq!(IsaSubset::AR_MEM_CB_VAR.name(), "AR+MEM+CB+VAR");
        assert_eq!(format!("{}", IsaSubset::FULL), "AR+MEM+CB+VAR+IND");
    }

    #[test]
    fn body_specs_exclude_terminators() {
        for s in IsaSubset::FULL.body_specs() {
            assert!(!s.form.is_terminator(), "{} should not be a terminator", s.name);
        }
    }

    #[test]
    fn mem_forms_marked_as_memory() {
        for s in catalog() {
            if s.class == InstrClass::Mem {
                assert!(s.form.accesses_mem(), "{} should access memory", s.name);
            }
            if s.class == InstrClass::Ar {
                assert!(!s.form.accesses_mem(), "{} should not access memory", s.name);
            }
        }
    }

    #[test]
    fn ar_subset_contains_no_memory_or_branches() {
        for s in IsaSubset::AR.specs() {
            assert_eq!(s.class, InstrClass::Ar);
        }
    }

    #[test]
    fn default_subset() {
        assert_eq!(IsaSubset::default(), IsaSubset::AR_MEM_CB);
    }
}
