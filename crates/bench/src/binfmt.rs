//! The compact binary frame format for checkpoints, reports and spool
//! records — the hot-path alternative to the JSON codecs in
//! [`crate::report`].
//!
//! JSON remains the debug/interop form (and the client-port wire format);
//! this module exists because checkpoint transfer is the coordinator's hot
//! path: at fleet scale every wave of every job crosses the worker wire and
//! the spool, and a 180 KB JSON checkpoint costs both parse time and
//! bandwidth that a length-prefixed binary frame does not.
//!
//! # Frame layout
//!
//! ```text
//! magic   4 bytes   "RVZB"
//! version u8        FORMAT_VERSION (1)
//! kind    u8        frame kind (checkpoint, transfer, grant, record, ...)
//! length  u32 LE    body length in bytes (as stored, i.e. compressed)
//! body    ...       zero-run-packed section table
//! ```
//!
//! The body is a **section table**: a varint section count followed by
//! `tag u8 | varint length | bytes` entries.  Decoders skip unknown tags,
//! so new sections can be added without a version bump; removing or
//! re-typing a section is what `FORMAT_VERSION` guards.
//!
//! The body is stored **zero-run packed** ([`encode_rle`]): alternating
//! `varint literal-length | literal bytes | varint zero-run-length`
//! chunks.  Revizor's architectural inputs are deliberately low-entropy
//! (§5.2: each sandbox word takes one of a handful of cache-line-aligned
//! values), so checkpoint payloads are mostly zero bytes — run-packing
//! them costs one linear pass and shrinks real checkpoints several-fold
//! on top of the structural savings.  Incompressible data expands by a
//! few varint bytes at worst.
//!
//! # Payload encodings
//!
//! * counters and lengths are LEB128 **varints**; signed integers are
//!   zigzag-folded first — instruction streams pack into a few bytes per
//!   instruction;
//! * entropy-bearing words (seeds, digests, cache-set vectors, register
//!   file contents) are **raw little-endian** `u64`s — a varint would
//!   inflate them;
//! * enumerations are one-byte indices into their canonical `ALL` arrays
//!   (`Reg::ALL`, `Cond::ALL`, ...) — the array order is part of the wire
//!   format, guarded by `FORMAT_VERSION`;
//! * strings are varint-length-prefixed UTF-8; sandbox memory is raw
//!   bytes, not hex.
//!
//! Decoding is bounds-checked end to end and **never panics** on malformed
//! input: every reader returns a [`DecodeError`].  The digest-validation
//! contract is unchanged — [`CheckpointTransfer::validates`] compares the
//! sender's pre-encode digest against the digest of the decoded snapshot,
//! so a codec regression (in either format) is caught end to end.

use crate::json::Json;
use crate::report::{CheckpointTransfer, DecodeError};
use revizor::diversity::{Pattern, PatternCoverage};
use revizor::fuzzer::ViolationReport;
use revizor::orchestrator::{CellProgress, GroupProgress, MatrixCheckpoint};
use revizor::staticanalysis::{GadgetSignature, SourceKind, TransmitterKind};
use revizor::VulnClass;
use rvz_analyzer::{EffectivenessStats, Violation};
use rvz_cache::SetVector;
use rvz_executor::HTrace;
use rvz_isa::{
    AluOp, BasicBlock, BlockId, Cond, FlagSet, Input, Instr, MemOperand, Operand, Reg,
    SandboxLayout, Terminator, TestCase, Width,
};
use rvz_model::{Contract, ExecutionClause, ObservationClause};
use std::collections::BTreeSet;
use std::time::Duration;

/// The frame magic: every binary frame starts with these four bytes.  The
/// first byte (`R`) can never open a JSON line (`{`), which is how the
/// service's framing layer tells the two formats apart on a shared socket.
pub const MAGIC: [u8; 4] = *b"RVZB";

/// The binary format version, bumped on any incompatible payload change
/// (section re-typing, enum reordering).  Adding new section tags does
/// *not* require a bump — decoders skip unknown tags.
pub const FORMAT_VERSION: u8 = 1;

/// Fixed frame header size: magic + version + kind + u32 body length.
pub const HEADER_LEN: usize = 10;

/// Upper bound on a frame body accepted from the wire: a corrupt or
/// hostile length prefix must not make a reader allocate gigabytes.
pub const MAX_FRAME: usize = 64 << 20;

// Frame kinds.
/// A bare [`MatrixCheckpoint`].
pub const KIND_CHECKPOINT: u8 = 1;
/// A checkpoint transfer (job + digest + checkpoint, plus service meta).
pub const KIND_TRANSFER: u8 = 2;
/// A coordinator work grant (service meta + optional resume checkpoint).
pub const KIND_GRANT: u8 = 3;
/// A spool job record.
pub const KIND_SPOOL_RECORD: u8 = 4;
/// A bare [`ViolationReport`].
pub const KIND_REPORT: u8 = 5;
/// A result-store index entry.
pub const KIND_STORE_ENTRY: u8 = 6;

// Section tags (shared across frame kinds; a tag means the same thing in
// every frame that carries it).
/// Job id (string).
pub const TAG_JOB: u8 = 1;
/// Pre-encode checkpoint digest (u64 LE).
pub const TAG_DIGEST: u8 = 2;
/// Replication cursor / wave counter (varint).
pub const TAG_WAVE: u8 = 3;
/// A [`MatrixCheckpoint`] payload.
pub const TAG_CHECKPOINT: u8 = 4;
/// A binary-JSON document (service meta, job specs, results, events).
pub const TAG_META: u8 = 5;
/// A per-unit record (spool records carry one per work unit).
pub const TAG_UNIT: u8 = 6;
/// A [`ViolationReport`] payload.
pub const TAG_REPORT: u8 = 7;

// ---------------------------------------------------------------------------
// Writer primitives.

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-folded signed varint.
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a raw little-endian `u64` (entropy-bearing words).
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Append a varint-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

// ---------------------------------------------------------------------------
// Reader primitives: bounds-checked, never panic.

/// A bounds-checked cursor over a binary payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let low = u64::from(byte & 0x7f);
            if shift == 63 && low > 1 {
                return Err("varint overflows u64".to_string());
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err("varint longer than 10 bytes".to_string())
    }

    /// Read a zigzag-folded signed varint.
    pub fn zigzag(&mut self) -> Result<i64, DecodeError> {
        let v = self.varint()?;
        Ok((v >> 1) as i64 ^ -((v & 1) as i64))
    }

    /// Read a varint into `usize` (or any narrower integer).
    pub fn int<T: TryFrom<u64>>(&mut self) -> Result<T, DecodeError> {
        let v = self.varint()?;
        T::try_from(v).map_err(|_| format!("integer {v} out of range"))
    }

    /// Read a raw little-endian `u64`.
    pub fn u64_le(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn u32_le(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64_le()?))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("invalid boolean byte {b:#04x}")),
        }
    }

    /// Read a varint-length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<String, DecodeError> {
        let len: usize = self.int()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not valid UTF-8".to_string())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len: usize = self.int()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Read an element count and pre-flight it against the bytes left:
    /// every element costs at least one byte, so a count beyond
    /// `remaining()` is corrupt — reject it before allocating.
    fn count(&mut self) -> Result<usize, DecodeError> {
        let n: usize = self.int()?;
        if n > self.remaining() {
            return Err(format!("element count {n} exceeds the {} bytes left", self.remaining()));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Zero-run packing (the body compression layer).

/// Zero-run-pack `src`: alternating `varint literal-length | literals |
/// varint zero-run-length` chunks.  Zero runs shorter than four bytes are
/// cheaper left as literals, so they are.
pub fn encode_rle(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 4 + 16);
    let mut i = 0;
    while i < src.len() {
        // Extend the literal chunk until a zero run worth encoding (>= 4
        // bytes) or the end of input.
        let lit_start = i;
        while i < src.len() {
            if src[i] == 0 {
                let mut j = i;
                while j < src.len() && src[j] == 0 {
                    j += 1;
                }
                if j - i >= 4 {
                    break;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        put_varint(&mut out, (i - lit_start) as u64);
        out.extend_from_slice(&src[lit_start..i]);
        let zero_start = i;
        while i < src.len() && src[i] == 0 {
            i += 1;
        }
        put_varint(&mut out, (i - zero_start) as u64);
    }
    out
}

/// Undo [`encode_rle`].  `max` bounds the decoded size so a corrupt or
/// hostile run length cannot make the reader allocate gigabytes.
pub fn decode_rle(src: &[u8], max: usize) -> Result<Vec<u8>, DecodeError> {
    let mut r = Reader::new(src);
    let mut out = Vec::with_capacity(src.len() * 2);
    while !r.is_empty() {
        let lit: usize = r.int()?;
        if out.len().saturating_add(lit) > max {
            return Err(format!("run-packed payload exceeds the {max}-byte limit"));
        }
        out.extend_from_slice(r.take(lit)?);
        let zeros: usize = r.int()?;
        if out.len().saturating_add(zeros) > max {
            return Err(format!("run-packed payload exceeds the {max}-byte limit"));
        }
        out.resize(out.len() + zeros, 0);
    }
    Ok(out)
}

fn enum_idx<T: Copy + PartialEq>(all: &[T], v: T) -> u8 {
    all.iter().position(|x| *x == v).expect("enum value in its ALL array") as u8
}

fn enum_at<T: Copy>(all: &[T], idx: u8, what: &str) -> Result<T, DecodeError> {
    all.get(usize::from(idx)).copied().ok_or_else(|| format!("invalid {what} index {idx}"))
}

// ---------------------------------------------------------------------------
// Frames and section tables.

/// Build one frame: header, section table, sections.
pub struct FrameBuilder {
    kind: u8,
    sections: Vec<(u8, Vec<u8>)>,
}

impl FrameBuilder {
    /// Start a frame of `kind`.
    pub fn new(kind: u8) -> FrameBuilder {
        FrameBuilder { kind, sections: Vec::new() }
    }

    /// Append a raw section.
    pub fn section(mut self, tag: u8, bytes: Vec<u8>) -> FrameBuilder {
        self.sections.push((tag, bytes));
        self
    }

    /// Append a string section.
    pub fn str_section(self, tag: u8, s: &str) -> FrameBuilder {
        self.section(tag, s.as_bytes().to_vec())
    }

    /// Append a raw-LE `u64` section.
    pub fn u64_section(self, tag: u8, v: u64) -> FrameBuilder {
        self.section(tag, v.to_le_bytes().to_vec())
    }

    /// Append a varint section.
    pub fn varint_section(self, tag: u8, v: u64) -> FrameBuilder {
        let mut out = Vec::with_capacity(10);
        put_varint(&mut out, v);
        self.section(tag, out)
    }

    /// Append a binary-JSON section.
    pub fn json_section(self, tag: u8, doc: &Json) -> FrameBuilder {
        let mut out = Vec::new();
        enc_json(&mut out, doc);
        self.section(tag, out)
    }

    /// Append a [`MatrixCheckpoint`] section.
    pub fn checkpoint_section(self, tag: u8, cp: &MatrixCheckpoint) -> FrameBuilder {
        let mut out = Vec::new();
        enc_checkpoint(&mut out, cp);
        self.section(tag, out)
    }

    /// Serialize the frame (the body is zero-run packed).
    pub fn build(self) -> Vec<u8> {
        let mut body = Vec::new();
        put_varint(&mut body, self.sections.len() as u64);
        for (tag, bytes) in &self.sections {
            body.push(*tag);
            put_bytes(&mut body, bytes);
        }
        let packed = encode_rle(&body);
        let mut out = Vec::with_capacity(HEADER_LEN + packed.len());
        out.extend_from_slice(&MAGIC);
        out.push(FORMAT_VERSION);
        out.push(self.kind);
        put_u32_le(&mut out, packed.len() as u32);
        out.extend_from_slice(&packed);
        out
    }
}

/// A parsed frame: kind plus its section table (tags may repeat).  Owns
/// the unpacked body; sections borrow from it.
pub struct Frame {
    /// The frame kind byte.
    pub kind: u8,
    body: Vec<u8>,
    sections: Vec<(u8, std::ops::Range<usize>)>,
}

/// How many bytes the frame starting at `buf[0]` occupies, if its header
/// is complete — the service framing layer uses this to wait for exactly
/// one whole frame.  Returns an error for bad magic, a wrong version or an
/// oversized length so a reactor can drop the connection instead of
/// waiting forever.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, DecodeError> {
    if buf.len() < HEADER_LEN {
        // Reject bad magic as early as the bytes allow.
        if !MAGIC.starts_with(&buf[..buf.len().min(4)]) {
            return Err("bad frame magic".to_string());
        }
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err("bad frame magic".to_string());
    }
    if buf[4] != FORMAT_VERSION {
        return Err(format!("unsupported binary format version {}", buf[4]));
    }
    let len = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame body of {len} bytes exceeds the {MAX_FRAME} limit"));
    }
    Ok(Some(HEADER_LEN + len))
}

/// Parse one complete frame (header + body).
pub fn parse_frame(buf: &[u8]) -> Result<Frame, DecodeError> {
    let total = frame_len(buf)?.ok_or("truncated frame header")?;
    if buf.len() < total {
        return Err(format!("truncated frame: header promises {total} bytes, have {}", buf.len()));
    }
    let kind = buf[5];
    let body = decode_rle(&buf[HEADER_LEN..total], MAX_FRAME)?;
    let mut r = Reader::new(&body);
    let n = r.count()?;
    let mut sections = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8()?;
        let len: usize = r.int()?;
        let start = body.len() - r.remaining();
        r.take(len)?;
        sections.push((tag, start..start + len));
    }
    Ok(Frame { kind, body, sections })
}

impl Frame {
    /// The first section with `tag`, if any.
    pub fn section(&self, tag: u8) -> Option<&[u8]> {
        self.sections.iter().find(|(t, _)| *t == tag).map(|(_, r)| &self.body[r.clone()])
    }

    /// All sections with `tag`, in frame order.
    pub fn sections(&self, tag: u8) -> impl Iterator<Item = &[u8]> + '_ {
        self.sections.iter().filter(move |(t, _)| *t == tag).map(|(_, r)| &self.body[r.clone()])
    }

    fn need(&self, tag: u8, what: &str) -> Result<&[u8], DecodeError> {
        self.section(tag).ok_or_else(|| format!("frame is missing its {what} section"))
    }

    /// Decode a required string section.
    pub fn str_section(&self, tag: u8, what: &str) -> Result<String, DecodeError> {
        String::from_utf8(self.need(tag, what)?.to_vec())
            .map_err(|_| format!("{what} section is not valid UTF-8"))
    }

    /// Decode a required raw-LE `u64` section.
    pub fn u64_section(&self, tag: u8, what: &str) -> Result<u64, DecodeError> {
        let b = self.need(tag, what)?;
        Ok(u64::from_le_bytes(
            b.try_into().map_err(|_| format!("{what} section is not 8 bytes"))?,
        ))
    }

    /// Decode a required varint section.
    pub fn varint_section(&self, tag: u8, what: &str) -> Result<u64, DecodeError> {
        Reader::new(self.need(tag, what)?).varint()
    }

    /// Decode a required binary-JSON section.
    pub fn json_section(&self, tag: u8, what: &str) -> Result<Json, DecodeError> {
        let mut r = Reader::new(self.need(tag, what)?);
        dec_json(&mut r)
    }

    /// Decode a required checkpoint section.
    pub fn checkpoint_section(&self, tag: u8, what: &str) -> Result<MatrixCheckpoint, DecodeError> {
        let mut r = Reader::new(self.need(tag, what)?);
        dec_checkpoint(&mut r)
    }
}

// ---------------------------------------------------------------------------
// Generic binary JSON (service meta, job specs, results, events).

const J_NULL: u8 = 0;
const J_FALSE: u8 = 1;
const J_TRUE: u8 = 2;
const J_NUM: u8 = 3;
const J_UINT: u8 = 4;
const J_STR: u8 = 5;
const J_ARR: u8 = 6;
const J_OBJ: u8 = 7;

/// Encode an arbitrary [`Json`] document in compact binary form.
pub fn enc_json(out: &mut Vec<u8>, doc: &Json) {
    match doc {
        Json::Null => out.push(J_NULL),
        Json::Bool(false) => out.push(J_FALSE),
        Json::Bool(true) => out.push(J_TRUE),
        Json::Num(f) => {
            out.push(J_NUM);
            put_f64(out, *f);
        }
        Json::UInt(v) => {
            out.push(J_UINT);
            put_varint(out, *v);
        }
        Json::Str(s) => {
            out.push(J_STR);
            put_str(out, s);
        }
        Json::Arr(items) => {
            out.push(J_ARR);
            put_varint(out, items.len() as u64);
            for item in items {
                enc_json(out, item);
            }
        }
        Json::Obj(fields) => {
            out.push(J_OBJ);
            put_varint(out, fields.len() as u64);
            for (key, value) in fields {
                put_str(out, key);
                enc_json(out, value);
            }
        }
    }
}

/// Decode a document written by [`enc_json`].
pub fn dec_json(r: &mut Reader) -> Result<Json, DecodeError> {
    match r.u8()? {
        J_NULL => Ok(Json::Null),
        J_FALSE => Ok(Json::Bool(false)),
        J_TRUE => Ok(Json::Bool(true)),
        J_NUM => Ok(Json::Num(r.f64()?)),
        J_UINT => Ok(Json::UInt(r.varint()?)),
        J_STR => Ok(Json::Str(r.str_()?)),
        J_ARR => {
            let n = r.count()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(dec_json(r)?);
            }
            Ok(Json::Arr(items))
        }
        J_OBJ => {
            let n = r.count()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let key = r.str_()?;
                fields.push((key, dec_json(r)?));
            }
            Ok(Json::Obj(fields))
        }
        t => Err(format!("invalid JSON tag byte {t:#04x}")),
    }
}

// ---------------------------------------------------------------------------
// ISA-level payload codecs.

fn enc_reg(out: &mut Vec<u8>, r: Reg) {
    out.push(enum_idx(&Reg::ALL, r));
}

fn dec_reg(r: &mut Reader) -> Result<Reg, DecodeError> {
    let idx = r.u8()?;
    enum_at(&Reg::ALL, idx, "register")
}

fn enc_width(out: &mut Vec<u8>, w: Width) {
    out.push(enum_idx(&Width::ALL, w));
}

fn dec_width(r: &mut Reader) -> Result<Width, DecodeError> {
    let idx = r.u8()?;
    enum_at(&Width::ALL, idx, "width")
}

fn enc_cond(out: &mut Vec<u8>, c: Cond) {
    out.push(enum_idx(&Cond::ALL, c));
}

fn dec_cond(r: &mut Reader) -> Result<Cond, DecodeError> {
    let idx = r.u8()?;
    enum_at(&Cond::ALL, idx, "condition code")
}

fn enc_mem_operand(out: &mut Vec<u8>, m: &MemOperand) {
    enc_reg(out, m.base);
    match m.index {
        None => out.push(0),
        Some(idx) => {
            out.push(1);
            enc_reg(out, idx);
        }
    }
    out.push(m.scale);
    put_zigzag(out, m.disp);
}

fn dec_mem_operand(r: &mut Reader) -> Result<MemOperand, DecodeError> {
    let base = dec_reg(r)?;
    let index = match r.u8()? {
        0 => None,
        1 => Some(dec_reg(r)?),
        b => return Err(format!("invalid option byte {b:#04x} for index register")),
    };
    Ok(MemOperand { base, index, scale: r.u8()?, disp: r.zigzag()? })
}

const OP_REG: u8 = 0;
const OP_IMM: u8 = 1;
const OP_MEM: u8 = 2;

fn enc_operand(out: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Reg(reg, w) => {
            out.push(OP_REG);
            enc_reg(out, *reg);
            enc_width(out, *w);
        }
        Operand::Imm(v) => {
            out.push(OP_IMM);
            put_zigzag(out, *v);
        }
        Operand::Mem(m, w) => {
            out.push(OP_MEM);
            enc_mem_operand(out, m);
            enc_width(out, *w);
        }
    }
}

fn dec_operand(r: &mut Reader) -> Result<Operand, DecodeError> {
    match r.u8()? {
        OP_REG => Ok(Operand::Reg(dec_reg(r)?, dec_width(r)?)),
        OP_IMM => Ok(Operand::Imm(r.zigzag()?)),
        OP_MEM => Ok(Operand::Mem(dec_mem_operand(r)?, dec_width(r)?)),
        t => Err(format!("invalid operand tag {t:#04x}")),
    }
}

const I_ALU: u8 = 0;
const I_MOV: u8 = 1;
const I_CMOV: u8 = 2;
const I_SETCC: u8 = 3;
const I_CMP: u8 = 4;
const I_TEST: u8 = 5;
const I_SHIFT: u8 = 6;
const I_UNARY: u8 = 7;
const I_DIV: u8 = 8;
const I_IMUL: u8 = 9;
const I_LEA: u8 = 10;
const I_BSWAP: u8 = 11;
const I_XCHG: u8 = 12;
const I_LFENCE: u8 = 13;
const I_MFENCE: u8 = 14;
const I_NOP: u8 = 15;

fn enc_instr(out: &mut Vec<u8>, i: &Instr) {
    match i {
        Instr::Alu { op, dest, src, lock } => {
            out.push(I_ALU);
            out.push(enum_idx(&AluOp::ALL, *op));
            enc_operand(out, dest);
            enc_operand(out, src);
            put_bool(out, *lock);
        }
        Instr::Mov { dest, src } => {
            out.push(I_MOV);
            enc_operand(out, dest);
            enc_operand(out, src);
        }
        Instr::Cmov { cond, dest, src, width } => {
            out.push(I_CMOV);
            enc_cond(out, *cond);
            enc_reg(out, *dest);
            enc_operand(out, src);
            enc_width(out, *width);
        }
        Instr::Setcc { cond, dest } => {
            out.push(I_SETCC);
            enc_cond(out, *cond);
            enc_reg(out, *dest);
        }
        Instr::Cmp { a, b } => {
            out.push(I_CMP);
            enc_operand(out, a);
            enc_operand(out, b);
        }
        Instr::Test { a, b } => {
            out.push(I_TEST);
            enc_operand(out, a);
            enc_operand(out, b);
        }
        Instr::Shift { op, dest, amount } => {
            out.push(I_SHIFT);
            out.push(enum_idx(&rvz_isa::ShiftOp::ALL, *op));
            enc_operand(out, dest);
            enc_operand(out, amount);
        }
        Instr::Unary { op, dest } => {
            out.push(I_UNARY);
            out.push(enum_idx(&rvz_isa::UnaryOp::ALL, *op));
            enc_operand(out, dest);
        }
        Instr::Div { src } => {
            out.push(I_DIV);
            enc_operand(out, src);
        }
        Instr::Imul { dest, src } => {
            out.push(I_IMUL);
            enc_reg(out, *dest);
            enc_operand(out, src);
        }
        Instr::Lea { dest, addr } => {
            out.push(I_LEA);
            enc_reg(out, *dest);
            enc_mem_operand(out, addr);
        }
        Instr::Bswap { dest } => {
            out.push(I_BSWAP);
            enc_reg(out, *dest);
        }
        Instr::Xchg { dest, src } => {
            out.push(I_XCHG);
            enc_reg(out, *dest);
            enc_operand(out, src);
        }
        Instr::Lfence => out.push(I_LFENCE),
        Instr::Mfence => out.push(I_MFENCE),
        Instr::Nop => out.push(I_NOP),
    }
}

fn dec_instr(r: &mut Reader) -> Result<Instr, DecodeError> {
    match r.u8()? {
        I_ALU => Ok(Instr::Alu {
            op: {
                let idx = r.u8()?;
                enum_at(&AluOp::ALL, idx, "ALU op")?
            },
            dest: dec_operand(r)?,
            src: dec_operand(r)?,
            lock: r.bool()?,
        }),
        I_MOV => Ok(Instr::Mov { dest: dec_operand(r)?, src: dec_operand(r)? }),
        I_CMOV => Ok(Instr::Cmov {
            cond: dec_cond(r)?,
            dest: dec_reg(r)?,
            src: dec_operand(r)?,
            width: dec_width(r)?,
        }),
        I_SETCC => Ok(Instr::Setcc { cond: dec_cond(r)?, dest: dec_reg(r)? }),
        I_CMP => Ok(Instr::Cmp { a: dec_operand(r)?, b: dec_operand(r)? }),
        I_TEST => Ok(Instr::Test { a: dec_operand(r)?, b: dec_operand(r)? }),
        I_SHIFT => Ok(Instr::Shift {
            op: {
                let idx = r.u8()?;
                enum_at(&rvz_isa::ShiftOp::ALL, idx, "shift op")?
            },
            dest: dec_operand(r)?,
            amount: dec_operand(r)?,
        }),
        I_UNARY => Ok(Instr::Unary {
            op: {
                let idx = r.u8()?;
                enum_at(&rvz_isa::UnaryOp::ALL, idx, "unary op")?
            },
            dest: dec_operand(r)?,
        }),
        I_DIV => Ok(Instr::Div { src: dec_operand(r)? }),
        I_IMUL => Ok(Instr::Imul { dest: dec_reg(r)?, src: dec_operand(r)? }),
        I_LEA => Ok(Instr::Lea { dest: dec_reg(r)?, addr: dec_mem_operand(r)? }),
        I_BSWAP => Ok(Instr::Bswap { dest: dec_reg(r)? }),
        I_XCHG => Ok(Instr::Xchg { dest: dec_reg(r)?, src: dec_operand(r)? }),
        I_LFENCE => Ok(Instr::Lfence),
        I_MFENCE => Ok(Instr::Mfence),
        I_NOP => Ok(Instr::Nop),
        t => Err(format!("invalid instruction tag {t:#04x}")),
    }
}

const T_EXIT: u8 = 0;
const T_JMP: u8 = 1;
const T_CONDJMP: u8 = 2;
const T_INDIRECTJMP: u8 = 3;
const T_CALL: u8 = 4;
const T_RET: u8 = 5;

fn enc_terminator(out: &mut Vec<u8>, t: &Terminator) {
    match t {
        Terminator::Exit => out.push(T_EXIT),
        Terminator::Jmp { target } => {
            out.push(T_JMP);
            put_varint(out, target.0 as u64);
        }
        Terminator::CondJmp { cond, taken, not_taken } => {
            out.push(T_CONDJMP);
            enc_cond(out, *cond);
            put_varint(out, taken.0 as u64);
            put_varint(out, not_taken.0 as u64);
        }
        Terminator::IndirectJmp { src, table } => {
            out.push(T_INDIRECTJMP);
            enc_reg(out, *src);
            put_varint(out, table.len() as u64);
            for b in table {
                put_varint(out, b.0 as u64);
            }
        }
        Terminator::Call { target, return_to } => {
            out.push(T_CALL);
            put_varint(out, target.0 as u64);
            put_varint(out, return_to.0 as u64);
        }
        Terminator::Ret => out.push(T_RET),
    }
}

fn dec_terminator(r: &mut Reader) -> Result<Terminator, DecodeError> {
    match r.u8()? {
        T_EXIT => Ok(Terminator::Exit),
        T_JMP => Ok(Terminator::Jmp { target: BlockId(r.int()?) }),
        T_CONDJMP => Ok(Terminator::CondJmp {
            cond: dec_cond(r)?,
            taken: BlockId(r.int()?),
            not_taken: BlockId(r.int()?),
        }),
        T_INDIRECTJMP => {
            let src = dec_reg(r)?;
            let n = r.count()?;
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                table.push(BlockId(r.int()?));
            }
            Ok(Terminator::IndirectJmp { src, table })
        }
        T_CALL => Ok(Terminator::Call {
            target: BlockId(r.int()?),
            return_to: BlockId(r.int()?),
        }),
        T_RET => Ok(Terminator::Ret),
        t => Err(format!("invalid terminator tag {t:#04x}")),
    }
}

fn enc_sandbox(out: &mut Vec<u8>, s: &SandboxLayout) {
    put_u64_le(out, s.base);
    put_varint(out, s.data_pages);
    match s.assist_page {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_u64_le(out, p);
        }
    }
    put_varint(out, s.line_offset);
}

fn dec_sandbox(r: &mut Reader) -> Result<SandboxLayout, DecodeError> {
    let base = r.u64_le()?;
    let data_pages = r.varint()?;
    let assist_page = match r.u8()? {
        0 => None,
        1 => Some(r.u64_le()?),
        b => return Err(format!("invalid option byte {b:#04x} for assist_page")),
    };
    Ok(SandboxLayout { base, data_pages, assist_page, line_offset: r.varint()? })
}

/// Encode a test case: sandbox, origin, then each block's varint-packed
/// instruction stream.
pub fn enc_test_case(out: &mut Vec<u8>, tc: &TestCase) {
    enc_sandbox(out, &tc.sandbox());
    put_str(out, tc.origin());
    put_varint(out, tc.blocks().len() as u64);
    for b in tc.blocks() {
        put_varint(out, b.id.0 as u64);
        match &b.label {
            None => out.push(0),
            Some(label) => {
                out.push(1);
                put_str(out, label);
            }
        }
        put_varint(out, b.instrs.len() as u64);
        for i in &b.instrs {
            enc_instr(out, i);
        }
        enc_terminator(out, &b.terminator);
    }
}

/// Decode a test case written by [`enc_test_case`].
pub fn dec_test_case(r: &mut Reader) -> Result<TestCase, DecodeError> {
    let sandbox = dec_sandbox(r)?;
    let origin = r.str_()?;
    let nblocks = r.count()?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let id = BlockId(r.int()?);
        let label = match r.u8()? {
            0 => None,
            1 => Some(r.str_()?),
            b => return Err(format!("invalid option byte {b:#04x} for block label")),
        };
        let ninstrs = r.count()?;
        let mut instrs = Vec::with_capacity(ninstrs);
        for _ in 0..ninstrs {
            instrs.push(dec_instr(r)?);
        }
        blocks.push(BasicBlock { id, label, instrs, terminator: dec_terminator(r)? });
    }
    Ok(TestCase::new(blocks, sandbox).with_origin(origin))
}

fn enc_input(out: &mut Vec<u8>, input: &Input) {
    for reg in &input.regs {
        put_u64_le(out, *reg);
    }
    out.push(input.flags.bits());
    put_bytes(out, &input.mem);
    put_u64_le(out, input.seed_id);
}

fn dec_input(r: &mut Reader) -> Result<Input, DecodeError> {
    let mut regs = [0u64; 16];
    for reg in &mut regs {
        *reg = r.u64_le()?;
    }
    let flags = FlagSet::from_bits(r.u8()?);
    Ok(Input { regs, flags, mem: r.bytes()?, seed_id: r.u64_le()? })
}

fn enc_htrace(out: &mut Vec<u8>, t: &HTrace) {
    put_u64_le(out, t.sets().bits());
    out.extend_from_slice(&t.samples().to_le_bytes());
}

fn dec_htrace(r: &mut Reader) -> Result<HTrace, DecodeError> {
    let sets = SetVector::from_bits(r.u64_le()?);
    Ok(HTrace::from_parts(sets, r.u32_le()?))
}

fn enc_violation(out: &mut Vec<u8>, v: &Violation) {
    put_varint(out, v.input_a as u64);
    put_varint(out, v.input_b as u64);
    enc_htrace(out, &v.htrace_a);
    enc_htrace(out, &v.htrace_b);
    put_u64_le(out, v.ctrace_digest);
}

fn dec_violation(r: &mut Reader) -> Result<Violation, DecodeError> {
    Ok(Violation {
        input_a: r.int()?,
        input_b: r.int()?,
        htrace_a: dec_htrace(r)?,
        htrace_b: dec_htrace(r)?,
        ctrace_digest: r.u64_le()?,
    })
}

// ---------------------------------------------------------------------------
// Contract / report payload codecs.

const OBSERVATIONS: [ObservationClause; 3] =
    [ObservationClause::Mem, ObservationClause::Ct, ObservationClause::Arch];
const EXECUTIONS: [ExecutionClause; 4] = [
    ExecutionClause::Seq,
    ExecutionClause::Cond,
    ExecutionClause::Bpas,
    ExecutionClause::CondBpas,
];
// The array index is the wire tag: new classes must be appended at the end
// so frames written by older builds keep decoding to the same class.
const VULN_CLASSES: [VulnClass; 10] = [
    VulnClass::SpectreV1,
    VulnClass::SpectreV1Var,
    VulnClass::SpectreV4,
    VulnClass::SpectreV4Var,
    VulnClass::Mds,
    VulnClass::LviNull,
    VulnClass::SpeculativeStoreEviction,
    VulnClass::Unknown,
    VulnClass::SpectreV2,
    VulnClass::SpectreV5Ret,
];
const SOURCE_KINDS: [SourceKind; 6] = [
    SourceKind::CondBranch,
    SourceKind::IndirectBranch,
    SourceKind::Return,
    SourceKind::StoreBypass,
    SourceKind::AssistLoad,
    SourceKind::VarLatency,
];
const TRANSMITTER_KINDS: [TransmitterKind; 2] = [TransmitterKind::Load, TransmitterKind::Store];

fn enc_contract(out: &mut Vec<u8>, c: &Contract) {
    out.push(enum_idx(&OBSERVATIONS, c.observation));
    out.push(enum_idx(&EXECUTIONS, c.execution));
    put_varint(out, c.speculation_window as u64);
    put_bool(out, c.nested_speculation);
    put_bool(out, c.expose_speculative_stores);
}

fn dec_contract(r: &mut Reader) -> Result<Contract, DecodeError> {
    let observation = {
        let idx = r.u8()?;
        enum_at(&OBSERVATIONS, idx, "observation clause")?
    };
    let execution = {
        let idx = r.u8()?;
        enum_at(&EXECUTIONS, idx, "execution clause")?
    };
    Ok(Contract {
        observation,
        execution,
        speculation_window: r.int()?,
        nested_speculation: r.bool()?,
        expose_speculative_stores: r.bool()?,
    })
}

fn enc_gadget_signature(out: &mut Vec<u8>, g: &GadgetSignature) {
    out.push(enum_idx(&SOURCE_KINDS, g.source));
    out.push(enum_idx(&TRANSMITTER_KINDS, g.transmitter));
    put_bool(out, g.through_load);
    put_bool(out, g.var_latency);
}

fn dec_gadget_signature(r: &mut Reader) -> Result<GadgetSignature, DecodeError> {
    let source = {
        let idx = r.u8()?;
        enum_at(&SOURCE_KINDS, idx, "source kind")?
    };
    let transmitter = {
        let idx = r.u8()?;
        enum_at(&TRANSMITTER_KINDS, idx, "transmitter kind")?
    };
    Ok(GadgetSignature {
        source,
        transmitter,
        through_load: r.bool()?,
        var_latency: r.bool()?,
    })
}

fn enc_effectiveness(out: &mut Vec<u8>, e: &EffectivenessStats) {
    put_varint(out, e.total_inputs as u64);
    put_varint(out, e.effective_inputs as u64);
    put_varint(out, e.classes as u64);
    put_varint(out, e.singleton_classes as u64);
}

fn dec_effectiveness(r: &mut Reader) -> Result<EffectivenessStats, DecodeError> {
    Ok(EffectivenessStats {
        total_inputs: r.int()?,
        effective_inputs: r.int()?,
        classes: r.int()?,
        singleton_classes: r.int()?,
    })
}

fn enc_duration(out: &mut Vec<u8>, d: Duration) {
    put_varint(out, d.as_nanos().min(u128::from(u64::MAX)) as u64);
}

fn dec_duration(r: &mut Reader) -> Result<Duration, DecodeError> {
    Ok(Duration::from_nanos(r.varint()?))
}

/// Encode a [`ViolationReport`] payload.
pub fn enc_violation_report(out: &mut Vec<u8>, report: &ViolationReport) {
    enc_test_case(out, &report.test_case);
    put_varint(out, report.inputs.len() as u64);
    for input in &report.inputs {
        enc_input(out, input);
    }
    enc_violation(out, &report.violation);
    enc_contract(out, &report.contract);
    put_u64_le(out, report.test_case_seed);
    out.push(enum_idx(&VULN_CLASSES, report.vulnerability));
    match &report.gadget {
        None => out.push(0),
        Some(g) => {
            out.push(1);
            enc_gadget_signature(out, g);
        }
    }
    put_varint(out, report.test_cases_until_detection as u64);
    put_varint(out, report.inputs_until_detection as u64);
}

/// Decode a report written by [`enc_violation_report`].
pub fn dec_violation_report(r: &mut Reader) -> Result<ViolationReport, DecodeError> {
    let test_case = dec_test_case(r)?;
    let n = r.count()?;
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(dec_input(r)?);
    }
    let violation = dec_violation(r)?;
    let contract = dec_contract(r)?;
    let test_case_seed = r.u64_le()?;
    let vulnerability = {
        let idx = r.u8()?;
        enum_at(&VULN_CLASSES, idx, "vulnerability class")?
    };
    let gadget = match r.u8()? {
        0 => None,
        1 => Some(dec_gadget_signature(r)?),
        b => return Err(format!("invalid option byte {b:#04x} for gadget")),
    };
    Ok(ViolationReport {
        test_case,
        inputs,
        violation,
        contract,
        test_case_seed,
        vulnerability,
        gadget,
        test_cases_until_detection: r.int()?,
        inputs_until_detection: r.int()?,
    })
}

fn enc_coverage(out: &mut Vec<u8>, c: &PatternCoverage) {
    // The 8 patterns pack into one bitmask byte; pairs are index pairs.
    let mut mask = 0u8;
    for p in c.covered() {
        mask |= 1 << enum_idx(&Pattern::ALL, *p);
    }
    out.push(mask);
    let pairs = c.covered_pairs();
    put_varint(out, pairs.len() as u64);
    for (a, b) in pairs {
        out.push(enum_idx(&Pattern::ALL, *a));
        out.push(enum_idx(&Pattern::ALL, *b));
    }
}

fn dec_coverage(r: &mut Reader) -> Result<PatternCoverage, DecodeError> {
    let mask = r.u8()?;
    let mut covered = BTreeSet::new();
    for (i, p) in Pattern::ALL.into_iter().enumerate() {
        if mask & (1 << i) != 0 {
            covered.insert(p);
        }
    }
    let n = r.count()?;
    let mut pairs = BTreeSet::new();
    for _ in 0..n {
        let a = {
            let idx = r.u8()?;
            enum_at(&Pattern::ALL, idx, "pattern")?
        };
        let b = {
            let idx = r.u8()?;
            enum_at(&Pattern::ALL, idx, "pattern")?
        };
        pairs.insert((a, b));
    }
    Ok(PatternCoverage::from_parts(covered, pairs))
}

fn enc_cell_progress(out: &mut Vec<u8>, c: &CellProgress) {
    match &c.violation {
        None => out.push(0),
        Some(report) => {
            out.push(1);
            enc_violation_report(out, report);
        }
    }
    put_varint(out, c.test_cases as u64);
    put_varint(out, c.filtered as u64);
    put_varint(out, c.total_inputs as u64);
    enc_effectiveness(out, &c.effectiveness);
    enc_duration(out, c.detection_time);
}

fn dec_cell_progress(r: &mut Reader) -> Result<CellProgress, DecodeError> {
    let violation = match r.u8()? {
        0 => None,
        1 => Some(dec_violation_report(r)?),
        b => return Err(format!("invalid option byte {b:#04x} for cell violation")),
    };
    Ok(CellProgress {
        violation,
        test_cases: r.int()?,
        filtered: r.int()?,
        total_inputs: r.int()?,
        effectiveness: dec_effectiveness(r)?,
        detection_time: dec_duration(r)?,
    })
}

fn enc_group_progress(out: &mut Vec<u8>, g: &GroupProgress) {
    out.push(g.target_id);
    put_varint(out, g.next_index as u64);
    put_varint(out, g.test_cases as u64);
    put_varint(out, g.filtered as u64);
    put_varint(out, g.total_inputs as u64);
    put_varint(out, g.effectiveness.len() as u64);
    for e in &g.effectiveness {
        enc_effectiveness(out, e);
    }
    put_varint(out, g.round as u64);
    enc_duration(out, g.work);
    put_varint(out, g.escalations as u64);
    put_varint(out, g.coverage_level as u64);
    put_bool(out, g.round_improved);
    enc_coverage(out, &g.coverage);
}

fn dec_group_progress(r: &mut Reader) -> Result<GroupProgress, DecodeError> {
    let target_id = r.u8()?;
    let next_index = r.int()?;
    let test_cases = r.int()?;
    let filtered = r.int()?;
    let total_inputs = r.int()?;
    let n = r.count()?;
    let mut effectiveness = Vec::with_capacity(n);
    for _ in 0..n {
        effectiveness.push(dec_effectiveness(r)?);
    }
    Ok(GroupProgress {
        target_id,
        next_index,
        test_cases,
        filtered,
        total_inputs,
        effectiveness,
        round: r.int()?,
        work: dec_duration(r)?,
        escalations: r.int()?,
        coverage_level: r.int()?,
        round_improved: r.bool()?,
        coverage: dec_coverage(r)?,
    })
}

/// Encode a [`MatrixCheckpoint`] payload (no frame header — see
/// [`matrix_checkpoint_to_binary`] for the framed form).
pub fn enc_checkpoint(out: &mut Vec<u8>, cp: &MatrixCheckpoint) {
    put_varint(out, cp.wave as u64);
    put_u64_le(out, cp.seed);
    put_varint(out, cp.budget as u64);
    put_varint(out, cp.round_size as u64);
    put_bool(out, cp.escalation);
    put_u64_le(out, cp.config_digest);
    put_varint(out, cp.cells.len() as u64);
    for cell in &cp.cells {
        match cell {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                enc_cell_progress(out, c);
            }
        }
    }
    put_varint(out, cp.groups.len() as u64);
    for g in &cp.groups {
        enc_group_progress(out, g);
    }
}

/// Decode a checkpoint written by [`enc_checkpoint`].
pub fn dec_checkpoint(r: &mut Reader) -> Result<MatrixCheckpoint, DecodeError> {
    let wave = r.int()?;
    let seed = r.u64_le()?;
    let budget = r.int()?;
    let round_size = r.int()?;
    let escalation = r.bool()?;
    let config_digest = r.u64_le()?;
    let ncells = r.count()?;
    let mut cells = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        cells.push(match r.u8()? {
            0 => None,
            1 => Some(dec_cell_progress(r)?),
            b => return Err(format!("invalid option byte {b:#04x} for cell")),
        });
    }
    let ngroups = r.count()?;
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        groups.push(dec_group_progress(r)?);
    }
    Ok(MatrixCheckpoint {
        wave,
        seed,
        budget,
        round_size,
        escalation,
        config_digest,
        cells,
        groups,
    })
}

// ---------------------------------------------------------------------------
// Framed top-level codecs (what the service and spool actually move).

/// Serialize a checkpoint as one self-describing frame.
pub fn matrix_checkpoint_to_binary(cp: &MatrixCheckpoint) -> Vec<u8> {
    FrameBuilder::new(KIND_CHECKPOINT).checkpoint_section(TAG_CHECKPOINT, cp).build()
}

/// Decode a frame written by [`matrix_checkpoint_to_binary`].
pub fn matrix_checkpoint_from_binary(buf: &[u8]) -> Result<MatrixCheckpoint, DecodeError> {
    let frame = parse_frame(buf)?;
    if frame.kind != KIND_CHECKPOINT {
        return Err(format!("expected a checkpoint frame, found kind {}", frame.kind));
    }
    frame.checkpoint_section(TAG_CHECKPOINT, "checkpoint")
}

/// Serialize a violation report as one self-describing frame.
pub fn violation_report_to_binary(report: &ViolationReport) -> Vec<u8> {
    let mut payload = Vec::new();
    enc_violation_report(&mut payload, report);
    FrameBuilder::new(KIND_REPORT).section(TAG_REPORT, payload).build()
}

/// Decode a frame written by [`violation_report_to_binary`].
pub fn violation_report_from_binary(buf: &[u8]) -> Result<ViolationReport, DecodeError> {
    let frame = parse_frame(buf)?;
    if frame.kind != KIND_REPORT {
        return Err(format!("expected a report frame, found kind {}", frame.kind));
    }
    let mut r = Reader::new(frame.section(TAG_REPORT).ok_or("frame is missing its report section")?);
    dec_violation_report(&mut r)
}

/// Serialize one checkpoint transfer as a binary frame: the digest is
/// computed **before** encoding (exactly like the JSON form), `meta`
/// carries the service's routing fields (op, target, lease, events).
pub fn checkpoint_transfer_to_binary(job: &str, cp: &MatrixCheckpoint, meta: &Json) -> Vec<u8> {
    FrameBuilder::new(KIND_TRANSFER)
        .str_section(TAG_JOB, job)
        .varint_section(TAG_WAVE, cp.wave as u64)
        .u64_section(TAG_DIGEST, cp.digest())
        .json_section(TAG_META, meta)
        .checkpoint_section(TAG_CHECKPOINT, cp)
        .build()
}

/// A decoded binary transfer frame: the digest-validating transfer plus
/// the service's routing meta document.
pub struct BinaryTransfer {
    /// The transfer (validate with [`CheckpointTransfer::validates`]).
    pub transfer: CheckpointTransfer,
    /// Routing fields (op, target, lease, events) as a JSON document.
    pub meta: Json,
}

/// Decode a frame written by [`checkpoint_transfer_to_binary`].  Like the
/// JSON codec this rejects a wave header that disagrees with the payload,
/// and does **not** verify the digest — callers decide.
pub fn checkpoint_transfer_from_binary(buf: &[u8]) -> Result<BinaryTransfer, DecodeError> {
    let frame = parse_frame(buf)?;
    if frame.kind != KIND_TRANSFER {
        return Err(format!("expected a transfer frame, found kind {}", frame.kind));
    }
    let job = frame.str_section(TAG_JOB, "job")?;
    let wave = frame.varint_section(TAG_WAVE, "wave")? as usize;
    let digest = frame.u64_section(TAG_DIGEST, "digest")?;
    let meta = frame.json_section(TAG_META, "meta")?;
    let checkpoint = frame.checkpoint_section(TAG_CHECKPOINT, "checkpoint")?;
    if wave != checkpoint.wave {
        return Err(format!(
            "transfer wave {wave} disagrees with the checkpoint's wave {}",
            checkpoint.wave
        ));
    }
    Ok(BinaryTransfer { transfer: CheckpointTransfer { job, digest, checkpoint }, meta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{
        checkpoint_transfer_to_json, matrix_checkpoint_to_json, violation_report_to_json,
    };
    use revizor::campaign::NoopObserver;
    use revizor::orchestrator::CampaignMatrix;
    use revizor::targets::Target;

    fn mid_run_checkpoint() -> MatrixCheckpoint {
        let matrix = CampaignMatrix::new(7)
            .with_budget(40)
            .add_cells(Target::target5(), Contract::table3_contracts());
        let mut run = matrix.start();
        run.step(&mut NoopObserver);
        run.step(&mut NoopObserver);
        run.checkpoint()
    }

    fn v1_report() -> ViolationReport {
        let report = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq())
            .run();
        report.cells[0].violation.clone().expect("V1 found within 60 test cases")
    }

    #[test]
    fn checkpoint_frame_round_trips_and_preserves_the_digest() {
        let cp = mid_run_checkpoint();
        let frame = matrix_checkpoint_to_binary(&cp);
        let decoded = matrix_checkpoint_from_binary(&frame).unwrap();
        assert_eq!(decoded, cp);
        assert_eq!(decoded.digest(), cp.digest());
        // Deterministic encoding: same checkpoint, same bytes.
        assert_eq!(matrix_checkpoint_to_binary(&decoded), frame);
    }

    #[test]
    fn violation_report_frame_round_trips_on_a_real_v1() {
        let report = v1_report();
        let frame = violation_report_to_binary(&report);
        let decoded = violation_report_from_binary(&frame).unwrap();
        assert_eq!(decoded, report);
        // Binary ↔ JSON is lossless: both forms decode to the same value,
        // so their JSON renderings agree byte for byte.
        assert_eq!(
            violation_report_to_json(&decoded).render(),
            violation_report_to_json(&report).render()
        );
    }

    #[test]
    fn transfer_frame_round_trips_validates_and_rejects_wave_mismatch() {
        let cp = mid_run_checkpoint();
        let meta = Json::obj().field("op", "wave").field("target", 5u64).field("lease", 77u64);
        let frame = checkpoint_transfer_to_binary("j-bin-1", &cp, &meta);
        let decoded = checkpoint_transfer_from_binary(&frame).unwrap();
        assert_eq!(decoded.transfer.job, "j-bin-1");
        assert_eq!(decoded.transfer.checkpoint, cp);
        assert!(decoded.transfer.validates());
        assert_eq!(decoded.meta.get("lease").and_then(Json::as_u64), Some(77));
        // The JSON transfer of the same snapshot carries the same digest.
        let json_doc = checkpoint_transfer_to_json("j-bin-1", &cp);
        assert_eq!(json_doc.get("digest").and_then(Json::as_u64), Some(decoded.transfer.digest));
        // A frame whose wave header disagrees with its payload is rejected.
        let bad = FrameBuilder::new(KIND_TRANSFER)
            .str_section(TAG_JOB, "j")
            .varint_section(TAG_WAVE, cp.wave as u64 + 7)
            .u64_section(TAG_DIGEST, cp.digest())
            .json_section(TAG_META, &meta)
            .checkpoint_section(TAG_CHECKPOINT, &cp)
            .build();
        assert!(checkpoint_transfer_from_binary(&bad).is_err());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let cp = mid_run_checkpoint();
        let bin = matrix_checkpoint_to_binary(&cp).len();
        let json = matrix_checkpoint_to_json(&cp).render().len();
        assert!(
            bin * 3 <= json,
            "binary checkpoint ({bin} B) must be at least 3x smaller than JSON ({json} B)"
        );
    }

    #[test]
    fn truncation_at_every_boundary_errors_cleanly() {
        let cp = mid_run_checkpoint();
        let frame = matrix_checkpoint_to_binary(&cp);
        // Every strict prefix must error, never panic.  Sampling all
        // lengths is cheap enough at this frame size.
        for len in 0..frame.len() {
            assert!(matrix_checkpoint_from_binary(&frame[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let cp = mid_run_checkpoint();
        let frame = FrameBuilder::new(KIND_CHECKPOINT)
            .section(200, vec![1, 2, 3])
            .checkpoint_section(TAG_CHECKPOINT, &cp)
            .section(201, Vec::new())
            .build();
        assert_eq!(matrix_checkpoint_from_binary(&frame).unwrap(), cp);
    }

    #[test]
    fn wrong_magic_version_and_kind_are_rejected() {
        let cp = mid_run_checkpoint();
        let frame = matrix_checkpoint_to_binary(&cp);
        let mut bad_magic = frame.clone();
        bad_magic[0] = b'X';
        assert!(matrix_checkpoint_from_binary(&bad_magic).is_err());
        let mut bad_version = frame.clone();
        bad_version[4] = FORMAT_VERSION + 1;
        assert!(matrix_checkpoint_from_binary(&bad_version).is_err());
        let mut bad_kind = frame;
        bad_kind[5] = KIND_TRANSFER;
        assert!(matrix_checkpoint_from_binary(&bad_kind).is_err());
        // frame_len mirrors the header checks for the framing layer.
        assert!(frame_len(b"JUNKJUNKJUNK").is_err());
        assert_eq!(frame_len(b"RVZ").unwrap(), None);
    }

    #[test]
    fn binary_json_round_trips() {
        let doc = Json::obj()
            .field("op", "grant")
            .field("lease", u64::MAX)
            .field("pi", 3.25)
            .field("neg", Json::Num(-17.0))
            .field("none", Json::Null)
            .field("flag", true)
            .field("items", Json::Arr(vec![Json::UInt(1), Json::Str("two".into())]));
        let mut out = Vec::new();
        enc_json(&mut out, &doc);
        let decoded = dec_json(&mut Reader::new(&out)).unwrap();
        assert_eq!(decoded, doc);
        for len in 0..out.len() {
            assert!(dec_json(&mut Reader::new(&out[..len])).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn zero_run_packing_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0; 1000],
            vec![1, 2, 3],
            vec![0, 0, 0, 1, 0, 0, 0, 0, 0, 2, 2, 0],
            (0..=255u8).collect(),
            (0..4096).map(|i| if i % 8 == 0 { (i / 8) as u8 } else { 0 }).collect(),
        ];
        for src in cases {
            let packed = encode_rle(&src);
            assert_eq!(decode_rle(&packed, MAX_FRAME).unwrap(), src);
        }
        // A low-entropy sandbox-style payload (one value byte per u64
        // word) packs to ~3 bytes per 8: lit-length, literal, run-length.
        let sparse: Vec<u8> = (0..4096).map(|i| if i % 8 == 0 { 0x40 } else { 0 }).collect();
        assert!(encode_rle(&sparse).len() * 2 < sparse.len());
        // A hostile run length is bounded, not allocated.
        let mut hostile = Vec::new();
        put_varint(&mut hostile, 0);
        put_varint(&mut hostile, u64::MAX);
        assert!(decode_rle(&hostile, MAX_FRAME).is_err());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            let mut out = Vec::new();
            put_zigzag(&mut out, v);
            assert_eq!(Reader::new(&out).zigzag().unwrap(), v, "{v}");
        }
    }
}
