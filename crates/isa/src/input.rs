//! Architectural inputs to a test case.
//!
//! An *input* is "a set of values to initialize the architectural state,
//! which includes registers (including FLAGS) and the memory sandbox" (§5.2).

use crate::reg::{FlagSet, Reg};
use crate::sandbox::SandboxLayout;
use serde::{Deserialize, Serialize};

/// One architectural input (`Data` in Definition 1).
///
/// The reserved registers ([`Reg::R14`] sandbox base, [`Reg::Rsp`]) are
/// always overwritten by the emulator / CPU before execution, so their
/// values here are irrelevant.
///
/// # Example
/// ```
/// use rvz_isa::{Input, Reg, SandboxLayout};
/// let mut input = Input::zeroed(SandboxLayout::one_page());
/// input.set_reg(Reg::Rax, 0x40);
/// input.write_mem_u64(64, 0xdead_beef);
/// assert_eq!(input.reg(Reg::Rax), 0x40);
/// assert_eq!(input.read_mem_u64(64), 0xdead_beef);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Input {
    /// General-purpose register values, indexed by [`Reg::index`].
    pub regs: [u64; 16],
    /// Initial status flags.
    pub flags: FlagSet,
    /// Initial contents of the memory sandbox (data pages + stack area).
    pub mem: Vec<u8>,
    /// Identifier of the generation seed, for reproducibility reports.
    pub seed_id: u64,
}

impl Input {
    /// An all-zero input sized for the given sandbox.
    pub fn zeroed(sandbox: SandboxLayout) -> Input {
        Input {
            regs: [0; 16],
            flags: FlagSet::default(),
            mem: vec![0; sandbox.size() as usize],
            seed_id: 0,
        }
    }

    /// Read a register value.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Set a register value.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Read a 64-bit little-endian value at a byte offset into the sandbox.
    ///
    /// # Panics
    /// Panics if the offset is out of bounds.
    pub fn read_mem_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.mem[offset..offset + 8]);
        u64::from_le_bytes(b)
    }

    /// Write a 64-bit little-endian value at a byte offset into the sandbox.
    ///
    /// # Panics
    /// Panics if the offset is out of bounds.
    pub fn write_mem_u64(&mut self, offset: usize, value: u64) {
        self.mem[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Number of sandbox bytes in this input.
    pub fn mem_size(&self) -> usize {
        self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_has_sandbox_size() {
        let s = SandboxLayout::two_pages();
        let i = Input::zeroed(s);
        assert_eq!(i.mem_size() as u64, s.size());
        assert_eq!(i.reg(Reg::Rax), 0);
    }

    #[test]
    fn reg_roundtrip() {
        let mut i = Input::zeroed(SandboxLayout::one_page());
        i.set_reg(Reg::Rbx, 42);
        assert_eq!(i.reg(Reg::Rbx), 42);
        assert_eq!(i.reg(Reg::Rcx), 0);
    }

    #[test]
    fn mem_u64_roundtrip() {
        let mut i = Input::zeroed(SandboxLayout::one_page());
        i.write_mem_u64(128, 0x0123_4567_89ab_cdef);
        assert_eq!(i.read_mem_u64(128), 0x0123_4567_89ab_cdef);
        assert_eq!(i.read_mem_u64(136), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_mem_panics() {
        let i = Input::zeroed(SandboxLayout::one_page());
        let _ = i.read_mem_u64(i.mem_size());
    }
}
