//! The campaign server: serve Revizor fuzzing campaigns over TCP.
//!
//! ```text
//! revizor-serve [--addr=127.0.0.1:15790] [--spool=DIR] [--shards=N] [--checkpoint-every=N]
//!               [--coordinator] [--fleet-addr=127.0.0.1:15791] [--steal-after=SECS]
//!               [--watermark=N]
//! ```
//!
//! * `--addr` — listen address (use port `0` for an ephemeral port; the
//!   bound address is printed on startup).
//! * `--spool` — durable job state; a restarted server resumes every
//!   unfinished job from here with byte-identical verdicts.
//! * `--spool-retain` — keep at most N finished/cancelled job records in
//!   the spool, pruning the oldest (default: keep all).
//! * `--store` — indexed violation store: every finished job's violation
//!   cells are appended here, deduplicated by minimized-gadget
//!   equivalence; query with `revizor-query --store=DIR`.
//! * `--token-file` — require a `token` field on every client request
//!   (except `ping`), resolved against this file: one
//!   `<token> <tenant>` pair per line (`#` comments and blank lines
//!   ignored).  Jobs are stamped with the submitting tenant, and
//!   `list`/`status`/`result`/`watch`/`cancel` only see the caller's
//!   own jobs.  Without the flag the server is open (no auth).
//! * `--shards` — long-lived worker threads, all draining one shared
//!   queue (highest priority first, FIFO within a priority).
//! * `--checkpoint-every` — waves between spool checkpoints (default 1).
//!   Ignored in fleet mode, which always persists every replicated
//!   wave (the at-most-one-wave-behind failover guarantee).
//! * `--coordinator` / `--fleet-addr` — **fleet mode**: listen for
//!   `revizor-worker` hosts (on `--fleet-addr`, default
//!   `127.0.0.1:15791`) instead of running local shard threads.  Workers
//!   register at runtime and *lease* relocatable work units (one per
//!   target group of a job); checkpoints are replicated into the spool
//!   after every wave, and the coordinator steals units back from slow
//!   or dead workers, so hosts can join, leave or crash mid-job with
//!   byte-identical verdicts.
//! * `--worker-timeout` — seconds a unit-holding worker may stay silent
//!   before it is declared partitioned and its unit requeued (default
//!   120; workers send at least one frame per wave).
//! * `--steal-after` — seconds a leased unit may go without replicating
//!   progress before the coordinator steals it for an idle worker
//!   (default 30).
//! * `--watermark` — queued-unit backpressure threshold: at or above
//!   this backlog, `submit` defers with a retry-after hint instead of
//!   queueing more work (default 1024).
//! * `--worker-addr` — **deprecated** alias for `--fleet-addr` (workers
//!   have registered at runtime since the fleet refactor, so the flag
//!   no longer pins anything); accepted for compatibility.
//!
//! The wire protocol (newline-delimited JSON) is documented in
//! `rvz_service::server`; submit with `revizor-submit` or any line-based
//! TCP client.

use rvz_bench::{flag_from_args, flag_value_from_args};
use rvz_service::{ServiceConfig, ServiceHandle};
use std::path::PathBuf;
use std::time::Duration;

const HELP: &str = "revizor-serve: serve Revizor fuzzing campaigns over TCP

usage: revizor-serve [options]

  --addr=HOST:PORT        client listen address (default 127.0.0.1:15790)
  --spool=DIR             durable job state; restarts resume unfinished jobs
  --spool-retain=N        keep at most N terminal job records, pruning the
                          oldest (default: keep all)
  --store=DIR             indexed violation store, queryable with
                          revizor-query (default: no indexing)
  --token-file=FILE       require per-client tokens: one `<token> <tenant>`
                          per line; clients pass --token and only see their
                          tenant's jobs (default: open, no auth)
  --shards=N              local shard threads (default 2; ignored in fleet mode)
  --checkpoint-every=N    waves between spool checkpoints (default 1)
  --coordinator           fleet mode on the default fleet address
  --fleet-addr=HOST:PORT  fleet mode: revizor-worker hosts register here at
                          runtime and lease relocatable work units
                          (default 127.0.0.1:15791)
  --worker-timeout=SECS   silence budget before a worker's unit is requeued
                          (default 120)
  --steal-after=SECS      stall budget before a leased unit is stolen for an
                          idle worker (default 30)
  --watermark=N           queued-unit backlog at which `submit` defers with a
                          retry-after hint (default 1024)
  --worker-addr=HOST:PORT DEPRECATED alias for --fleet-addr: workers register
                          at runtime now, nothing is pinned at launch
  -h, --help              this text
";

fn main() {
    if flag_from_args("--help") || flag_from_args("-h") {
        print!("{HELP}");
        return;
    }
    let addr =
        flag_value_from_args::<String>("--addr").unwrap_or_else(|| "127.0.0.1:15790".to_string());
    let spool = flag_value_from_args::<String>("--spool").map(PathBuf::from);
    let shards = flag_value_from_args::<usize>("--shards").unwrap_or(2);
    let checkpoint_every = flag_value_from_args::<usize>("--checkpoint-every").unwrap_or(1);
    let deprecated_worker_addr = flag_value_from_args::<String>("--worker-addr");
    if deprecated_worker_addr.is_some() {
        eprintln!(
            "revizor-serve: --worker-addr is deprecated (workers register at runtime now); \
             use --fleet-addr"
        );
    }
    let worker_listen = flag_value_from_args::<String>("--fleet-addr")
        .or(deprecated_worker_addr)
        .or_else(|| flag_from_args("--coordinator").then(|| "127.0.0.1:15791".to_string()));

    let mut config = ServiceConfig {
        shards,
        spool: spool.clone(),
        spool_retain: flag_value_from_args::<usize>("--spool-retain"),
        store: flag_value_from_args::<String>("--store").map(PathBuf::from),
        token_file: flag_value_from_args::<String>("--token-file").map(PathBuf::from),
        checkpoint_every,
        listen: Some(addr),
        worker_listen,
        ..ServiceConfig::default()
    };
    if let Some(secs) = flag_value_from_args::<u64>("--worker-timeout") {
        config.worker_timeout = Duration::from_secs(secs);
    }
    if let Some(secs) = flag_value_from_args::<u64>("--steal-after") {
        config.steal_after = Duration::from_secs(secs);
    }
    if let Some(watermark) = flag_value_from_args::<usize>("--watermark") {
        config.queue_watermark = watermark;
    }
    let handle = match ServiceHandle::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("revizor-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let bound = handle.local_addr().expect("listen address configured");
    let backend = match handle.worker_addr() {
        Some(fleet_addr) => format!("fleet coordinator; workers register on {fleet_addr}"),
        None => format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
    };
    eprintln!(
        "revizor-serve: listening on {bound} ({backend}, spool: {})",
        spool.as_deref().map(|p| p.display().to_string()).unwrap_or_else(|| "none".to_string()),
    );
    let resumed = handle.core().list();
    if !resumed.is_empty() {
        eprintln!("revizor-serve: {} job(s) loaded from the spool", resumed.len());
    }

    // Serve until killed; the spool makes an abrupt kill safe (unfinished
    // jobs resume on the next start).
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}
