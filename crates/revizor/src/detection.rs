//! Detection-speed harnesses (Tables 4 and 5, §6.5).

use crate::campaign::{self, SlateChecks};
use crate::classify::VulnClass;
use crate::orchestrator::CampaignMatrix;
use crate::targets::Target;
use rvz_analyzer::Analyzer;
use rvz_executor::{Executor, ExecutorConfig};
use rvz_gen::InputGenerator;
use rvz_isa::TestCase;
use rvz_model::Contract;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Outcome of one detection-time measurement (one cell sample of Table 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Whether a violation was found within the budget.
    pub found: bool,
    /// Vulnerability label of the violation, if classified.
    pub vulnerability: Option<String>,
    /// Test cases executed until the first violation (or the budget).
    pub test_cases: usize,
    /// Inputs executed until the first violation (or the budget).
    pub inputs: usize,
    /// Wall-clock time until the first violation (or the budget).
    pub duration: Duration,
}

/// Run one fuzzing campaign for `target` against `contract` and report how
/// long the first confirmed violation took (one sample of Table 4).
///
/// The campaign runs as a single-cell [`CampaignMatrix`]: the orchestrator's
/// detection-tuned defaults use mid-campaign generator parameters (a few
/// basic blocks, a dozen instructions, branch-then-load placement bias) and
/// a fixed configuration instead of the §5.6 diversity escalation, keeping
/// the harness comparable to the paper's minutes-long runs while executing
/// on a simulator — and making every sample a deterministic function of
/// `(target, contract, seed)`.
pub fn detection_time(
    target: &Target,
    contract: Contract,
    seed: u64,
    max_test_cases: usize,
) -> DetectionOutcome {
    let report = CampaignMatrix::new(seed)
        .with_budget(max_test_cases)
        .add_cell(target.clone(), contract)
        .run();
    let cell = report.cells.into_iter().next().expect("one cell in, one report out");
    DetectionOutcome {
        found: cell.found(),
        vulnerability: cell.vulnerability().map(|v| v.to_string()),
        test_cases: cell.test_cases,
        inputs: cell.total_inputs,
        duration: cell.detection_time,
    }
}

/// Statistics over several detection-time samples (mean and coefficient of
/// variation, as reported in Table 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionStats {
    /// Number of samples that found a violation.
    pub detected: usize,
    /// Number of samples taken.
    pub samples: usize,
    /// Mean wall-clock time of the successful samples.
    pub mean_duration: Duration,
    /// Coefficient of variation of the successful samples' durations.
    pub coefficient_of_variation: f64,
    /// Mean number of test cases until detection.
    pub mean_test_cases: f64,
    /// Mean number of inputs until detection.
    pub mean_inputs: f64,
}

/// Repeat [`detection_time`] `samples` times with different seeds and
/// aggregate, mirroring the "mean over 10 measurements" of Table 4.
pub fn detection_stats(
    target: &Target,
    contract: Contract,
    samples: usize,
    max_test_cases: usize,
) -> DetectionStats {
    let outcomes: Vec<DetectionOutcome> = (0..samples)
        .map(|s| detection_time(target, contract.clone(), s as u64 * 7919 + 1, max_test_cases))
        .collect();
    let found: Vec<&DetectionOutcome> = outcomes.iter().filter(|o| o.found).collect();
    let durations: Vec<f64> = found.iter().map(|o| o.duration.as_secs_f64()).collect();
    let mean = if durations.is_empty() {
        0.0
    } else {
        durations.iter().sum::<f64>() / durations.len() as f64
    };
    let cv = if durations.len() < 2 || mean == 0.0 {
        0.0
    } else {
        let var =
            durations.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / durations.len() as f64;
        var.sqrt() / mean
    };
    DetectionStats {
        detected: found.len(),
        samples,
        mean_duration: Duration::from_secs_f64(mean),
        coefficient_of_variation: cv,
        mean_test_cases: if found.is_empty() {
            0.0
        } else {
            found.iter().map(|o| o.test_cases as f64).sum::<f64>() / found.len() as f64
        },
        mean_inputs: if found.is_empty() {
            0.0
        } else {
            found.iter().map(|o| o.inputs as f64).sum::<f64>() / found.len() as f64
        },
    }
}

/// Measure the minimal number of random inputs needed to surface a
/// violation on a handwritten gadget (one cell of Table 5): inputs are added
/// one at a time (with the given seed) until the relational check reports a
/// confirmed violation.
///
/// Returns `None` if no violation surfaced within `max_inputs`.
pub fn inputs_to_violation(
    target: &Target,
    contract: Contract,
    gadget: &TestCase,
    seed: u64,
    max_inputs: usize,
) -> Option<usize> {
    inputs_to_violation_slate(target, std::slice::from_ref(&contract), gadget, seed, max_inputs)
        .into_iter()
        .next()
        .expect("one contract in, one result out")
}

/// [`inputs_to_violation`] for a whole contract slate in one pass: each
/// growing input batch is measured **once** and the collected hardware
/// traces are checked against every contract (they depend only on the
/// gadget and the inputs, never on the contract).  Returns, per contract in
/// slate order, the minimal input count that surfaced a violation — exactly
/// what independent per-contract runs with the same seed would report.
///
/// The §6.6 contract-sensitivity experiment uses this to evaluate CT-SEQ
/// and ARCH-SEQ against both gadgets with half the measurements.
pub fn inputs_to_violation_slate(
    target: &Target,
    contracts: &[Contract],
    gadget: &TestCase,
    seed: u64,
    max_inputs: usize,
) -> Vec<Option<usize>> {
    let mut executor = Executor::new(target.cpu(), ExecutorConfig::fast(target.mode).with_repetitions(2));
    let analyzer = Analyzer::new();
    let gen = InputGenerator::new(2);
    let mut results: Vec<Option<usize>> = vec![None; contracts.len()];
    for n in 2..=max_inputs {
        if results.iter().all(|r| r.is_some()) {
            break;
        }
        let inputs = gen.generate(gadget, seed, n);
        let Ok(outcomes) = campaign::evaluate_slate(
            &mut executor,
            &analyzer,
            SlateChecks::all(),
            contracts,
            gadget,
            &inputs,
        ) else {
            continue;
        };
        for (result, outcome) in results.iter_mut().zip(&outcomes) {
            if result.is_none() && outcome.confirmed_violation.is_some() {
                *result = Some(n);
            }
        }
    }
    results
}

/// For each contract of a slate, the input count of the first detection
/// across a schedule of input-generation seeds.  Seeds are tried in order;
/// each one is measured **once** for the whole slate
/// ([`inputs_to_violation_slate`]), a contract keeps the result of the
/// first seed that surfaced a violation, and the search stops as soon as
/// every contract has one.  The §6.6 contract-sensitivity experiment and
/// example share this schedule.
pub fn first_violations_over_seeds(
    target: &Target,
    contracts: &[Contract],
    gadget: &TestCase,
    seeds: impl IntoIterator<Item = u64>,
    max_inputs: usize,
) -> Vec<Option<usize>> {
    let mut first: Vec<Option<usize>> = vec![None; contracts.len()];
    for seed in seeds {
        let results = inputs_to_violation_slate(target, contracts, gadget, seed, max_inputs);
        for (slot, result) in first.iter_mut().zip(results) {
            if slot.is_none() {
                *slot = result;
            }
        }
        if first.iter().all(|r| r.is_some()) {
            break;
        }
    }
    first
}

/// Aggregate of [`inputs_to_violation`] over several seeds (Table 5 reports
/// the average over 100 experiments; the bench harness uses a configurable
/// count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputCountStats {
    /// Gadget label.
    pub gadget: String,
    /// Seeds for which a violation surfaced.
    pub detected: usize,
    /// Seeds tried.
    pub samples: usize,
    /// Mean number of inputs (over detecting seeds).
    pub mean_inputs: f64,
    /// Minimum number of inputs observed.
    pub min_inputs: usize,
    /// Maximum number of inputs observed.
    pub max_inputs: usize,
}

/// Run [`inputs_to_violation`] for several seeds and aggregate.
pub fn input_count_stats(
    label: &str,
    target: &Target,
    contract: Contract,
    gadget: &TestCase,
    samples: usize,
    max_inputs: usize,
) -> InputCountStats {
    let counts: Vec<usize> = (0..samples)
        .filter_map(|s| {
            inputs_to_violation(target, contract.clone(), gadget, s as u64 * 104_729 + 3, max_inputs)
        })
        .collect();
    InputCountStats {
        gadget: label.to_string(),
        detected: counts.len(),
        samples,
        mean_inputs: if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f64 / counts.len() as f64
        },
        min_inputs: counts.iter().copied().min().unwrap_or(0),
        max_inputs: counts.iter().copied().max().unwrap_or(0),
    }
}

/// Expected detection result for a known vulnerability class on a target —
/// used by the Table 4 bench to label its rows.
pub fn expected_label(target: &Target) -> Option<VulnClass> {
    match target.id {
        2 => Some(VulnClass::SpectreV4),
        5 => Some(VulnClass::SpectreV1),
        7 => Some(VulnClass::Mds),
        8 => Some(VulnClass::LviNull),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    #[test]
    fn v1_gadget_needs_few_inputs() {
        let n = inputs_to_violation(
            &Target::target5(),
            Contract::ct_seq(),
            &gadgets::spectre_v1(),
            5,
            64,
        );
        assert!(n.is_some(), "V1 gadget must be detected");
        assert!(n.unwrap() <= 32, "detection should need few inputs, got {n:?}");
    }

    #[test]
    fn v4_gadget_detected_on_unpatched_target_only() {
        let gadget = gadgets::spectre_v4();
        let unpatched =
            inputs_to_violation(&Target::target2(), Contract::ct_seq(), &gadget, 5, 48);
        assert!(unpatched.is_some(), "V4 must surface on the unpatched part");
        let patched = inputs_to_violation(&Target::target4(), Contract::ct_seq(), &gadget, 5, 24);
        assert!(patched.is_none(), "the V4 patch suppresses the leak");
    }

    #[test]
    fn detection_time_finds_v1_on_target5() {
        // Detection is stochastic in the PRNG stream, so the budget leaves
        // headroom over the worst measured seed rather than encoding one
        // particular stream.  Measured first V1 on Target 5 × CT-SEQ with
        // the orchestrator's detection-tuned defaults (fixed 4-block /
        // 14-instruction generator, branch-then-load bias):
        //
        //   seed  0   1   2   3   5   9   11  7920
        //   tcs   15  16  4   12  29  13  2   19
        //
        // The same seeds under the unbiased placement need 15/68/142/105/
        // 150/…, which is why the pre-orchestrator budget here was 120.
        let outcome = detection_time(&Target::target5(), Contract::ct_seq(), 11, 40);
        assert!(outcome.found);
        assert_eq!(outcome.vulnerability.as_deref(), Some("V1"));
        assert!(outcome.test_cases >= 1);
    }

    #[test]
    fn detection_stats_aggregate() {
        // The two sample seeds (s * 7919 + 1 = 1 and 7920) find their first
        // V1 at 16 and 19 test cases under the detection-tuned defaults
        // (see the per-seed table above); budget 60 keeps ~3× headroom and
        // still lets the test assert that *both* samples detect.
        let stats = detection_stats(&Target::target5(), Contract::ct_seq(), 2, 60);
        assert_eq!(stats.samples, 2);
        assert_eq!(stats.detected, 2);
        assert!(stats.mean_test_cases >= 1.0);
        assert!(stats.coefficient_of_variation >= 0.0);
    }

    #[test]
    fn expected_labels_match_table4_columns() {
        assert_eq!(expected_label(&Target::target2()), Some(VulnClass::SpectreV4));
        assert_eq!(expected_label(&Target::target5()), Some(VulnClass::SpectreV1));
        assert_eq!(expected_label(&Target::target7()), Some(VulnClass::Mds));
        assert_eq!(expected_label(&Target::target8()), Some(VulnClass::LviNull));
        assert_eq!(expected_label(&Target::target1()), None);
    }
}
