//! The spool: durable job state on disk.
//!
//! One JSON file per job (`<job id>.json`) holding the spec, the lifecycle
//! phase, the latest [`MatrixCheckpoint`] and — once finished — the result
//! payload.  Files are written atomically (temp file + rename), so a killed
//! server never leaves a half-written record; on startup the server rescans
//! the directory and re-queues every unfinished job, which then resumes
//! from its checkpoint with byte-identical verdicts (see
//! [`revizor::orchestrator::MatrixRun`]).

use crate::job::JobSpec;
use revizor::orchestrator::MatrixCheckpoint;
use rvz_bench::json::{parse, Json};
use rvz_bench::report::{matrix_checkpoint_from_json, matrix_checkpoint_to_json};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, not yet picked up by its shard (or re-queued after a
    /// server restart).
    Queued,
    /// Currently being driven by a shard worker.
    Running,
    /// Finished; the result payload is available.
    Done,
    /// Cancelled by a client; a terminal state like [`JobPhase::Done`],
    /// with a `{"cancelled": true}` result payload.  A restarted server
    /// keeps the record but never re-runs the job.
    Cancelled,
}

impl JobPhase {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
        }
    }

    /// Is this a terminal phase (the job will never run again)?
    pub fn terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Cancelled)
    }

    fn from_label(s: &str) -> Option<JobPhase> {
        match s {
            "queued" => Some(JobPhase::Queued),
            "running" => Some(JobPhase::Running),
            "done" => Some(JobPhase::Done),
            "cancelled" => Some(JobPhase::Cancelled),
            _ => None,
        }
    }
}

/// Lifecycle phase of one work unit (one target group of its job's
/// matrix, relocatable across worker hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitPhase {
    /// Waiting in the global unit queue for a worker lease.
    Queued,
    /// Leased to a worker host; ownership is heartbeat-renewed and the
    /// coordinator may steal the unit back if progress stalls.
    Leased,
    /// The unit's sub-run finished; its stored checkpoint is final.
    Done,
}

impl UnitPhase {
    /// Wire/spool label.
    pub fn label(self) -> &'static str {
        match self {
            UnitPhase::Queued => "queued",
            UnitPhase::Leased => "leased",
            UnitPhase::Done => "done",
        }
    }

    fn from_label(s: &str) -> Option<UnitPhase> {
        match s {
            "queued" => Some(UnitPhase::Queued),
            "leased" => Some(UnitPhase::Leased),
            "done" => Some(UnitPhase::Done),
            _ => None,
        }
    }
}

/// One work unit's durable record (fleet mode only): the unit's target
/// group, its phase and its last replicated sub-run checkpoint.
#[derive(Debug, Clone)]
pub struct UnitRecord {
    /// The Table 2 target id whose cell group this unit drives.
    pub target: u8,
    /// Phase at the time of the last save.
    pub phase: UnitPhase,
    /// Last replicated sub-run checkpoint (`None` before the first wave;
    /// the final sub-run checkpoint once the unit is done).
    pub checkpoint: Option<MatrixCheckpoint>,
}

/// One job's durable record.
#[derive(Debug, Clone)]
pub struct SpoolRecord {
    /// Job identifier (also the file stem).
    pub job: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle phase at the time of the last save.
    pub phase: JobPhase,
    /// Latest wave checkpoint, when the job has started but not finished
    /// (kept on cancellation too, as a record of where the job stopped).
    /// In fleet mode this is the merged full-matrix view of the per-unit
    /// checkpoints below.
    pub checkpoint: Option<MatrixCheckpoint>,
    /// Per-unit state, once the job's work units have materialized (fleet
    /// mode).  `None` for shard-mode jobs and legacy records — restore
    /// falls back to splitting `checkpoint` by target group.
    pub units: Option<Vec<UnitRecord>>,
    /// Result payload, when the job is done (or cancelled).
    pub result: Option<Json>,
    /// A cancel arrived while the job was running but had not yet reached
    /// a wave boundary.  Persisted so the cancellation survives a server
    /// kill: a restarted server cancels the job instead of resuming it.
    pub cancel_requested: bool,
}

/// A spool directory.
#[derive(Debug)]
pub struct Spool {
    dir: PathBuf,
}

impl Spool {
    /// Open (creating if needed) a spool directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Spool> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Spool { dir })
    }

    /// The spool directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, job: &str) -> PathBuf {
        // Job ids are server-generated ([a-z0-9-] only), so the file name
        // is safe by construction; reject anything else defensively.
        self.dir.join(format!("{job}.json"))
    }

    /// Persist one record atomically.
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn save(&self, record: &SpoolRecord) -> io::Result<()> {
        let doc = Json::obj()
            .field("version", 1u64)
            .field("job", record.job.as_str())
            .field("phase", record.phase.label())
            .field("spec", record.spec.to_json())
            .field("checkpoint", record.checkpoint.as_ref().map(matrix_checkpoint_to_json))
            .field(
                "units",
                record.units.as_ref().map(|units| {
                    Json::Arr(
                        units
                            .iter()
                            .map(|u| {
                                Json::obj()
                                    .field("target", u.target)
                                    .field("phase", u.phase.label())
                                    .field(
                                        "checkpoint",
                                        u.checkpoint.as_ref().map(matrix_checkpoint_to_json),
                                    )
                            })
                            .collect(),
                    )
                }),
            )
            .field("result", record.result.clone())
            .field("cancel_requested", record.cancel_requested);
        let path = self.path_for(&record.job);
        let tmp = self.dir.join(format!("{}.tmp", record.job));
        fs::write(&tmp, doc.render())?;
        fs::rename(&tmp, &path)
    }

    /// Load every readable record in the spool.  Corrupt or alien files are
    /// skipped (reported on stderr) rather than failing the whole scan; a
    /// `running` phase is demoted to `queued` — the server holding it is
    /// gone.
    pub fn load_all(&self) -> Vec<SpoolRecord> {
        let mut records = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else { return records };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        for path in paths {
            match Self::load_one(&path) {
                Ok(record) => records.push(record),
                Err(e) => eprintln!("spool: skipping {}: {e}", path.display()),
            }
        }
        records
    }

    fn load_one(path: &Path) -> Result<SpoolRecord, String> {
        let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
        let doc = parse(&text)?;
        let job = doc
            .get("job")
            .and_then(Json::as_str)
            .ok_or("missing `job` field")?
            .to_string();
        let phase = doc
            .get("phase")
            .and_then(Json::as_str)
            .and_then(JobPhase::from_label)
            .ok_or("missing or unknown `phase`")?;
        // A `running` record means the previous server died mid-job.
        let phase = if phase == JobPhase::Running { JobPhase::Queued } else { phase };
        let spec = JobSpec::from_json(doc.get("spec").ok_or("missing `spec`")?)?;
        let checkpoint = match doc.get("checkpoint") {
            None | Some(Json::Null) => None,
            Some(cp) => Some(matrix_checkpoint_from_json(cp)?),
        };
        let units = match doc.get("units") {
            None | Some(Json::Null) => None,
            Some(units) => {
                let units = units.as_array().ok_or("`units` is not an array")?;
                let mut records = Vec::with_capacity(units.len());
                for (i, u) in units.iter().enumerate() {
                    let target = u
                        .get("target")
                        .and_then(Json::as_u64)
                        .and_then(|t| u8::try_from(t).ok())
                        .ok_or_else(|| format!("units[{i}] needs a target id"))?;
                    let phase = u
                        .get("phase")
                        .and_then(Json::as_str)
                        .and_then(UnitPhase::from_label)
                        .ok_or_else(|| format!("units[{i}] has an unknown phase"))?;
                    // A leased unit's owner died with the server: the lease
                    // is void, the unit goes back to the queue and resumes
                    // from its last replicated sub-checkpoint.
                    let phase =
                        if phase == UnitPhase::Leased { UnitPhase::Queued } else { phase };
                    let checkpoint = match u.get("checkpoint") {
                        None | Some(Json::Null) => None,
                        Some(cp) => Some(matrix_checkpoint_from_json(cp)?),
                    };
                    records.push(UnitRecord { target, phase, checkpoint });
                }
                Some(records)
            }
        };
        let result = match doc.get("result") {
            None | Some(Json::Null) => None,
            Some(r) => Some(r.clone()),
        };
        let cancel_requested =
            doc.get("cancel_requested").and_then(Json::as_bool).unwrap_or(false);
        Ok(SpoolRecord { job, spec, phase, checkpoint, units, result, cancel_requested })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rvz-spool-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_through_the_spool() {
        let dir = scratch_dir("roundtrip");
        let spool = Spool::open(&dir).unwrap();
        let spec = JobSpec::new(7).with_budget(40).add_cell(5, "CT-SEQ");
        let record = SpoolRecord {
            job: "j-test-1".to_string(),
            spec: spec.clone(),
            phase: JobPhase::Queued,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].job, "j-test-1");
        assert_eq!(loaded[0].spec, spec);
        assert_eq!(loaded[0].phase, JobPhase::Queued);
        assert!(!loaded[0].cancel_requested);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_records_round_trip_and_leased_units_requeue() {
        let dir = scratch_dir("units");
        let spool = Spool::open(&dir).unwrap();
        let spec = JobSpec::new(7)
            .with_budget(40)
            .add_cell(5, "CT-SEQ")
            .add_cell(1, "CT-SEQ");
        let sub_cp = spec.to_matrix().unwrap().group_matrices()[0].initial_checkpoint();
        let record = SpoolRecord {
            job: "j-test-u".to_string(),
            spec,
            phase: JobPhase::Running,
            checkpoint: None,
            units: Some(vec![
                UnitRecord {
                    target: 5,
                    phase: UnitPhase::Leased,
                    checkpoint: Some(sub_cp.clone()),
                },
                UnitRecord { target: 1, phase: UnitPhase::Done, checkpoint: None },
            ]),
            result: None,
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        let loaded = spool.load_all().remove(0);
        let units = loaded.units.expect("units survive the round trip");
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].target, 5);
        assert_eq!(
            units[0].phase,
            UnitPhase::Queued,
            "a leased unit's owner died with the server; the lease is void"
        );
        assert_eq!(units[0].checkpoint.as_ref(), Some(&sub_cp));
        assert_eq!(units[1].target, 1);
        assert_eq!(units[1].phase, UnitPhase::Done);
        assert!(units[1].checkpoint.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_state_round_trips_and_stays_terminal() {
        let dir = scratch_dir("cancelled");
        let spool = Spool::open(&dir).unwrap();
        let record = SpoolRecord {
            job: "j-test-3".to_string(),
            spec: JobSpec::new(1).with_priority(-2).add_cell(1, "CT-SEQ"),
            phase: JobPhase::Cancelled,
            checkpoint: None,
            units: None,
            result: Some(Json::obj().field("cancelled", true)),
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        // A running record whose cancel arrived just before the kill keeps
        // the pending-cancel flag through the restart.
        let pending = SpoolRecord {
            job: "j-test-4".to_string(),
            spec: JobSpec::new(2).add_cell(1, "CT-SEQ"),
            phase: JobPhase::Running,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: true,
        };
        spool.save(&pending).unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 2);
        let cancelled = loaded.iter().find(|r| r.job == "j-test-3").unwrap();
        assert_eq!(cancelled.phase, JobPhase::Cancelled);
        assert!(cancelled.phase.terminal());
        assert_eq!(cancelled.spec.priority, -2);
        let pending = loaded.iter().find(|r| r.job == "j-test-4").unwrap();
        assert_eq!(pending.phase, JobPhase::Queued, "running demotes to queued");
        assert!(pending.cancel_requested, "the pending cancel must survive the restart");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn running_records_are_requeued_and_corrupt_files_skipped() {
        let dir = scratch_dir("requeue");
        let spool = Spool::open(&dir).unwrap();
        let record = SpoolRecord {
            job: "j-test-2".to_string(),
            spec: JobSpec::new(1).add_cell(1, "CT-SEQ"),
            phase: JobPhase::Running,
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: false,
        };
        spool.save(&record).unwrap();
        fs::write(dir.join("garbage.json"), "not json at all").unwrap();
        let loaded = spool.load_all();
        assert_eq!(loaded.len(), 1, "corrupt file must be skipped");
        assert_eq!(loaded[0].phase, JobPhase::Queued, "running demotes to queued");
        let _ = fs::remove_dir_all(&dir);
    }
}
