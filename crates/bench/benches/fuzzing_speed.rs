//! Criterion bench for the end-to-end fuzzing loop (§6.5): the time to
//! process one complete test case (generation + contract traces + hardware
//! traces + relational analysis) on a non-violating target.

use criterion::{criterion_group, criterion_main, Criterion};
use revizor::targets::Target;
use revizor::{FuzzerConfig, Revizor};
use rvz_executor::ExecutorConfig;
use rvz_gen::GeneratorConfig;
use rvz_model::Contract;

fn bench_full_test_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzzing_speed");
    group.sample_size(20);

    for (name, target, inputs) in [
        ("target1_ar_50_inputs", Target::target1(), 50),
        ("target5_ar_mem_cb_50_inputs", Target::target5(), 50),
    ] {
        let gen_cfg = GeneratorConfig::for_subset(target.isa).with_instructions(12);
        let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_generator(gen_cfg.clone())
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
            .with_inputs_per_test_case(inputs);
        let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
        let generator = rvz_gen::ProgramGenerator::new(gen_cfg);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let tc = generator.generate(seed);
                fuzzer.test_case(&tc, seed).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_repetition_sweep(c: &mut Criterion) {
    // The full per-test-case pipeline at the paper-realistic repetition
    // counts (§5.3 repeats each measurement 50 times): this is where the
    // measurement session pays off, since trace collection dominates the
    // round time at `repetitions ≥ 3`.
    let mut group = c.benchmark_group("fuzzing_speed_repetitions");
    group.sample_size(10);
    for reps in [3usize, 5, 10] {
        let target = Target::target1();
        let gen_cfg = GeneratorConfig::for_subset(target.isa).with_instructions(12);
        let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_generator(gen_cfg.clone())
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(reps))
            .with_inputs_per_test_case(50);
        let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
        let generator = rvz_gen::ProgramGenerator::new(gen_cfg);
        group.bench_function(format!("target1_50_inputs_reps{reps}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let tc = generator.generate(seed);
                fuzzer.test_case(&tc, seed).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_parallel_rounds(c: &mut Criterion) {
    // Round throughput of the campaign driver at different parallelism
    // levels (§6.5): each iteration runs a fixed-budget campaign on the
    // non-violating baseline target so every round is processed in full.
    // On a multi-core host the 4-thread row should show ≥ 2× the rounds/s
    // of the 1-thread row; the campaigns are seed-for-seed identical in
    // their results regardless of parallelism.
    let mut group = c.benchmark_group("parallel_rounds");
    group.sample_size(10);

    for parallelism in [1usize, 2, 4] {
        let target = Target::target1();
        let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_generator(GeneratorConfig::for_subset(target.isa).with_instructions(12))
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
            .with_inputs_per_test_case(20)
            .with_max_test_cases(30)
            .with_parallelism(parallelism);
        group.bench_function(format!("threads_{parallelism}_30_test_cases"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let mut fuzzer = Revizor::new(target.cpu(), config.clone().with_seed(seed))
                    .with_target(target.clone());
                fuzzer.run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_test_case, bench_repetition_sweep, bench_parallel_rounds);
criterion_main!(benches);
