//! Architectural faults.

use std::fmt;

/// An architectural fault raised during emulation.
///
/// Generated test cases are instrumented so that faults cannot occur
/// (address masking, divisor patching, §5.1); the emulator still detects
/// them so that bugs in the generator or handwritten gadgets surface as
/// errors instead of silent misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Division by zero or quotient overflow in `DIV`.
    DivideError,
    /// A memory access escaped the sandbox.
    OutOfSandbox {
        /// Faulting virtual address.
        addr: u64,
        /// Access size in bytes.
        len: u64,
    },
    /// The in-sandbox stack over- or underflowed (unbalanced CALL/RET).
    StackFault {
        /// Stack pointer at the time of the fault.
        rsp: u64,
    },
    /// The execution exceeded the step budget (possible only for malformed
    /// handwritten test cases; generated DAGs always terminate).
    StepLimitExceeded,
    /// A `RET` was executed with no prior `CALL` and no valid return value.
    InvalidReturnTarget {
        /// The value popped from the stack.
        value: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::DivideError => write!(f, "divide error"),
            Fault::OutOfSandbox { addr, len } => {
                write!(f, "memory access of {len} bytes at {addr:#x} escaped the sandbox")
            }
            Fault::StackFault { rsp } => write!(f, "stack fault with RSP={rsp:#x}"),
            Fault::StepLimitExceeded => write!(f, "execution exceeded the step limit"),
            Fault::InvalidReturnTarget { value } => {
                write!(f, "invalid return target {value:#x}")
            }
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(format!("{}", Fault::DivideError), "divide error");
        let s = format!("{}", Fault::OutOfSandbox { addr: 0x1000, len: 8 });
        assert!(s.contains("0x1000"));
        assert!(format!("{}", Fault::StackFault { rsp: 0x20 }).contains("RSP"));
    }

    #[test]
    fn fault_is_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<Fault>();
    }
}
