//! Scenario-pinned test cases: handwritten speculation gadgets the
//! generator can emit instead of random programs.
//!
//! The random generator only emits conditional branches (`IndirectJmp`,
//! `Call` and `Ret` are excluded from random bodies so every program stays
//! fault-free), which means the BTB and RSB of the CPU under test are never
//! exercised by random fuzzing.  Scenarios close that gap: a
//! [`GeneratorConfig`](crate::GeneratorConfig) carrying a [`Scenario`] makes
//! [`ProgramGenerator::generate`](crate::ProgramGenerator::generate) return
//! the pinned gadget for every seed (input streams still vary per seed), so
//! a campaign cell can target a specific predictor structure.
//!
//! The classic Table 5 gadgets live here too, so the bench binaries can run
//! them as ordinary scenario-pinned matrix cells over the shared campaign
//! pool.

use crate::config::GeneratorConfig;
use rvz_isa::builder::TestCaseBuilder;
use rvz_isa::{Cond, Instr, Operand, Reg, SandboxLayout, ShiftOp, TestCase};
use serde::{Deserialize, Serialize};

/// The sandbox-masking constant for a one-page sandbox (`0b111111000000`).
const MASK: i64 = 0b111111000000;

/// A handwritten speculation scenario the generator can be pinned to.
///
/// The first seven variants are the paper's Table 5 gadgets; the rest are
/// predictor-zoo scenarios that require a non-default
/// `PredictorConfig` to fire (see each variant's documentation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Spectre V1: bounds check bypass with a dependent double load.
    SpectreV1,
    /// Spectre V1.1: speculative out-of-bounds store and use.
    SpectreV11,
    /// Spectre V2: indirect jump with a BTB-predicted target.
    SpectreV2,
    /// Spectre V4: speculative store bypass.
    SpectreV4,
    /// Spectre V5 / ret2spec: overwritten return address vs. RSB.
    SpectreV5Ret,
    /// MDS via the line-fill buffer (RIDL/ZombieLoad-style).
    MdsLfb,
    /// MDS via the store buffer (Fallout-style).
    MdsSb,
    /// Cross-site BTB-aliasing V2: an always-taken indirect jump trains a
    /// BTB entry that a *different*, index/tag-aliased site later consumes,
    /// steering its transient execution into a leak block.  Requires a
    /// set-associative BTB with a small geometry (e.g.
    /// `PredictorConfig::aliasing_btb()`); the default last-target BTB
    /// keeps the two sites separate and stays compliant.
    BtbAliasingV2,
    /// A call chain deeper than the RSB capacity followed by the full
    /// return cascade: a cyclic RSB wraps around and predicts *stale*
    /// targets for the outermost returns, transiently re-executing the
    /// leak body with an attacker-controlled address (ret2spec past the
    /// buffer depth).  Requires `PredictorConfig::cyclic_rsb(..)`; the
    /// default stack RSB predicts nothing on underflow and stays
    /// compliant.
    DeepRsbChain {
        /// Call-chain depth; must exceed the RSB capacity to wrap and stay
        /// within the 32-slot sandbox stack.
        depth: usize,
    },
    /// A predictor-state-dependent leak: an architecturally invisible
    /// branch (both arms target the same block) records the input's class
    /// in the global history, and a later branch on the *same* predicate is
    /// perfectly predictable from that history.  A history-capable
    /// direction predictor (`PredictorConfig::tage()`, or a history-mixing
    /// bimodal) learns the correlation during warm-up and stays compliant;
    /// the history-*free* default bimodal keeps mispredicting as the
    /// priming inputs flip the direction, transiently leaking an
    /// input-derived address through the wrong arm.  The leak exists or
    /// vanishes purely as a function of predictor state.
    PredictorStateLeak,
}

impl Scenario {
    /// Short stable label, used in target descriptions and cell digests.
    pub fn label(&self) -> String {
        match self {
            Scenario::SpectreV1 => "V1".to_string(),
            Scenario::SpectreV11 => "V1.1".to_string(),
            Scenario::SpectreV2 => "V2".to_string(),
            Scenario::SpectreV4 => "V4".to_string(),
            Scenario::SpectreV5Ret => "V5-ret".to_string(),
            Scenario::MdsLfb => "MDS-LFB".to_string(),
            Scenario::MdsSb => "MDS-SB".to_string(),
            Scenario::BtbAliasingV2 => "V2-btb-alias".to_string(),
            Scenario::DeepRsbChain { depth } => format!("deep-rsb-{depth}"),
            Scenario::PredictorStateLeak => "predictor-state".to_string(),
        }
    }

    /// Build the pinned test case.
    pub fn build(&self) -> TestCase {
        match self {
            Scenario::SpectreV1 => spectre_v1(),
            Scenario::SpectreV11 => spectre_v1_1(),
            Scenario::SpectreV2 => spectre_v2(),
            Scenario::SpectreV4 => spectre_v4(),
            Scenario::SpectreV5Ret => spectre_v5_ret(),
            Scenario::MdsLfb => mds_lfb(),
            Scenario::MdsSb => mds_sb(),
            Scenario::BtbAliasingV2 => btb_aliasing_v2(),
            Scenario::DeepRsbChain { depth } => deep_rsb_chain(*depth),
            Scenario::PredictorStateLeak => predictor_state_leak(),
        }
    }

    /// The Table 5 scenarios with their paper labels, in table order.
    pub fn table5() -> Vec<Scenario> {
        vec![
            Scenario::SpectreV1,
            Scenario::SpectreV11,
            Scenario::SpectreV2,
            Scenario::SpectreV4,
            Scenario::SpectreV5Ret,
            Scenario::MdsLfb,
            Scenario::MdsSb,
        ]
    }
}

/// Spectre V1 (bounds check bypass): a conditional bounds check guards a
/// dependent double load; on the mispredicted path the secret selects the
/// address of the second load (Figure 6b of the paper).
pub fn spectre_v1() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:spectre-v1")
        .block("entry", |b| {
            b.and_imm(Reg::Rbx, MASK);
            b.cmp_imm(Reg::Rax, 128); // bounds check on RAX (half of the low-entropy inputs pass)
            b.jcc(Cond::B, "in_bounds", "done");
        })
        .block("in_bounds", |b| {
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx); // a = array1[b]
            b.and_imm(Reg::Rcx, MASK);
            b.load(Reg::Rdx, Reg::R14, Reg::Rcx); // c = array2[a]
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// Spectre V1.1 (speculative buffer overflow): the mispredicted path
/// contains a store whose address depends on unchecked data, followed by a
/// use of the same location.
pub fn spectre_v1_1() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:spectre-v1.1")
        .block("entry", |b| {
            b.and_imm(Reg::Rbx, MASK);
            b.cmp_imm(Reg::Rax, 128);
            b.jcc(Cond::B, "in_bounds", "done");
        })
        .block("in_bounds", |b| {
            b.store(Reg::R14, Reg::Rbx, Reg::Rcx); // speculative OOB store
            b.load(Reg::Rdx, Reg::R14, Reg::Rbx); // and a use of that location
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// Spectre V2 (branch target injection): an indirect jump whose target is
/// predicted by the BTB; the mispredicted target leaks a register through a
/// load.
pub fn spectre_v2() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:spectre-v2")
        .block("entry", |b| {
            b.and_imm(Reg::Rbx, MASK);
            // Bring the target selector down to the low bits so that the
            // cache-line-granular input values actually select different
            // targets (and therefore mistrain the BTB).
            b.push(Instr::Shift {
                op: ShiftOp::Shr,
                dest: Operand::reg(Reg::Rax),
                amount: Operand::imm(6),
            });
            b.jmp_indirect(Reg::Rax, vec!["leak", "safe"]);
        })
        .block("leak", |b| {
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            b.jmp("done");
        })
        .block("safe", |b| {
            b.nop();
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// Spectre V4 (speculative store bypass): a store with a slowly resolving
/// address is bypassed by a younger load, whose stale value selects a
/// dependent access.
pub fn spectre_v4() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:spectre-v4")
        .block("entry", |b| {
            // Slow address chain for the store.
            b.mov_imm(Reg::Rax, 0);
            b.imul_imm(Reg::Rax, 1);
            b.imul_imm(Reg::Rax, 1);
            b.imul_imm(Reg::Rax, 1);
            b.and_imm(Reg::Rax, MASK);
            // Overwrite the secret at [R14 + 0] with RDX.
            b.store(Reg::R14, Reg::Rax, Reg::Rdx);
            // The load may bypass the store and read the stale secret...
            b.load_disp(Reg::Rbx, Reg::R14, 0);
            // ...which then selects a dependent access.
            b.and_imm(Reg::Rbx, MASK);
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            b.exit();
        })
        .build()
}

/// Spectre V5 / ret2spec: the return address is overwritten in memory, so
/// the RSB predicts a stale target whose body leaks a register.
pub fn spectre_v5_ret() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:spectre-v5-ret")
        .block("entry", |b| {
            b.and_imm(Reg::Rbx, MASK);
            b.call("callee", "leak");
        })
        .block("callee", |b| {
            // Overwrite the return address on the in-sandbox stack with the
            // index of the "safe" block (3), diverting the architectural
            // return while the RSB still predicts "leak".
            b.mov_imm(Reg::Rcx, 3);
            b.store_disp(Reg::Rsp, 0, Reg::Rcx);
            b.ret();
        })
        .block("leak", |b| {
            b.load(Reg::Rdx, Reg::R14, Reg::Rbx);
            b.jmp("done");
        })
        .block("safe", |b| {
            b.nop();
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// MDS via the line-fill buffer (RIDL/ZombieLoad-style): a secret travels
/// through the fill buffer, an assisted load transiently forwards it, and a
/// dependent access leaks it.
pub fn mds_lfb() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:mds-lfb")
        .sandbox(SandboxLayout::two_pages().with_assist_page(1))
        .block("entry", |b| {
            // Pull the secret through the memory subsystem (fill buffer).
            b.and_imm(Reg::Rdx, MASK);
            b.load(Reg::Rax, Reg::R14, Reg::Rdx);
            // Assisted load from the accessed-bit-cleared page.
            b.load_disp(Reg::Rbx, Reg::R14, 4096 + 512);
            // Dependent access on the (transiently forwarded) value.
            b.and_imm(Reg::Rbx, MASK);
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            b.exit();
        })
        .build()
}

/// MDS via the store buffer (Fallout-style): the secret enters the memory
/// subsystem through a store rather than a load.
pub fn mds_sb() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:mds-sb")
        .sandbox(SandboxLayout::two_pages().with_assist_page(1))
        .block("entry", |b| {
            b.and_imm(Reg::Rdx, MASK);
            b.store(Reg::R14, Reg::Rdx, Reg::Rax); // secret value RAX through the store buffer
            b.load_disp(Reg::Rbx, Reg::R14, 4096 + 512); // assisted load
            b.and_imm(Reg::Rbx, MASK);
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            b.exit();
        })
        .build()
}

/// Cross-site BTB-aliasing V2 (see [`Scenario::BtbAliasingV2`]).
///
/// Block layout (indices are the BTB sites):
///
/// * block 1 `train`: an indirect jump whose one-entry table makes it
///   architecturally always go to `leak` — every run (re)trains the shared
///   BTB entry toward the leak block;
/// * block 2 `leak`: loads `array[RBX]` — architecturally executed once
///   with the input's (masked) RBX;
/// * block 3 `mid`: moves the secret RDX into RBX and masks it;
/// * block 5 `victim`: an indirect jump that architecturally always goes to
///   `safe`, but under a 2×2/1-bit BTB site 5 aliases site 1 (5 ≡ 1
///   mod 4), so the predictor steers it into `leak` — transiently
///   re-executing the load with the RDX-derived address.
///
/// Inputs that differ only in RDX have identical architectural traces (RDX
/// is never used for memory architecturally) and identical contract traces
/// under all four CT contracts (none of them speculates indirect jumps),
/// but different hardware traces — a violation even against CT-COND-BPAS.
pub fn btb_aliasing_v2() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:btb-aliasing-v2")
        .block("entry", |b| {
            b.and_imm(Reg::Rbx, MASK);
            b.jmp("train");
        })
        .block("train", |b| {
            b.jmp_indirect(Reg::Rax, vec!["leak"]);
        })
        .block("leak", |b| {
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            b.jmp("mid");
        })
        .block("mid", |b| {
            b.mov(Reg::Rbx, Reg::Rdx);
            b.and_imm(Reg::Rbx, MASK);
            b.jmp("pad");
        })
        .block("pad", |b| {
            b.nop();
            b.jmp("victim");
        })
        .block("victim", |b| {
            b.jmp_indirect(Reg::Rax, vec!["safe"]);
        })
        .block("safe", |b| {
            b.nop();
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// Deep RSB over/underflow chain (see [`Scenario::DeepRsbChain`]).
///
/// `depth` nested calls push `depth` return targets; a 16-entry cyclic RSB
/// keeps only the newest 16 and *wraps around* on the way back out, so the
/// outermost `depth - 16` returns are predicted toward stale (newest)
/// return sites.  The first return block (`rr<depth>`) holds the leak load,
/// and a middle return block rewrites RBX from the secret RDX before the
/// stale predictions fire — transiently re-executing the leak load with the
/// secret-derived address.  The secret is shifted up by four bits first:
/// the call chain's own stack traffic covers the low cache sets, and a leak
/// landing in an always-touched set would be invisible to Prime+Probe.
pub fn deep_rsb_chain(depth: usize) -> TestCase {
    // The sandbox stack holds 31 return slots; keep one spare.
    let depth = depth.clamp(2, 30);
    let mut builder = TestCaseBuilder::new().origin("gadget:deep-rsb-chain");
    builder = builder.block("entry", |b| {
        b.and_imm(Reg::Rbx, MASK);
        b.call("f1", "rr1");
    });
    // The call chain: f1 .. f<depth-1> each call the next level; f<depth>
    // is the innermost frame and starts the return cascade.
    for i in 1..depth {
        let target = format!("f{}", i + 1);
        let return_to = format!("rr{}", i + 1);
        builder = builder.block(format!("f{i}"), move |b| {
            b.call(target, return_to);
        });
    }
    builder = builder.block(format!("f{depth}"), |b| {
        b.nop();
        b.ret();
    });
    // The return cascade, innermost first: rr<depth> leaks, a middle frame
    // rewrites RBX from RDX, rr1 exits.
    let rewrite_at = depth / 2;
    for i in (2..=depth).rev() {
        builder = builder.block(format!("rr{i}"), move |b| {
            if i == depth {
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            } else if i == rewrite_at {
                b.mov(Reg::Rbx, Reg::Rdx);
                b.shl_imm(Reg::Rbx, 4);
                b.and_imm(Reg::Rbx, MASK);
            } else {
                b.nop();
            }
            b.ret();
        });
    }
    builder.block("rr1", |b| b.exit()).build()
}

/// Predictor-state-dependent leak (see [`Scenario::PredictorStateLeak`]).
///
/// The entry block's conditional branch targets the same block on both
/// arms, so its direction is architecturally invisible (same control flow,
/// same addresses) — it exists only to push the input's RAX class into the
/// global history register.  The `victim` block then branches on the *same*
/// predicate: its direction is perfectly determined by the history bit the
/// feeder just recorded, so a history-capable predictor (TAGE, or a
/// history-mixing bimodal) learns it during the warm-up pass and never
/// mispredicts again.  The history-*free* default bimodal sees only a
/// direction stream that keeps flipping with the priming inputs' RAX
/// classes and keeps mispredicting — transiently running the wrong arm,
/// whose load address derives from RBX.  Inputs of the no-load arm's class
/// share one contract trace under CT-SEQ whatever their RBX, so two
/// mispredicted inputs with different RBX violate the contract; swapping in
/// a predictor that consumes the history makes the same cell compliant.
/// The leak's existence is a function of predictor state alone.
pub fn predictor_state_leak() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:predictor-state-leak")
        .block("entry", |b| {
            // Spread the transient offset across distinct cache sets (the
            // low sets are shared with the architectural accesses).
            b.shl_imm(Reg::Rbx, 4);
            b.and_imm(Reg::Rbx, MASK);
            // History feeder: architecturally invisible, records RAX's
            // class in the global branch history.
            b.cmp_imm(Reg::Rax, 128);
            b.jcc(Cond::B, "victim", "victim");
        })
        .block("victim", |b| {
            // Same predicate as the feeder: pure history correlation.
            b.cmp_imm(Reg::Rax, 128);
            b.jcc(Cond::B, "hit", "leak");
        })
        .block("hit", |b| {
            b.nop();
            b.jmp("done");
        })
        .block("leak", |b| {
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// Builder hook used by [`ProgramGenerator`](crate::ProgramGenerator): the
/// pinned test case for a configuration, if any.
pub fn pinned_test_case(config: &GeneratorConfig) -> Option<TestCase> {
    config.scenario.as_ref().map(Scenario::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_valid_test_cases() {
        let scenarios = vec![
            Scenario::SpectreV1,
            Scenario::SpectreV11,
            Scenario::SpectreV2,
            Scenario::SpectreV4,
            Scenario::SpectreV5Ret,
            Scenario::MdsLfb,
            Scenario::MdsSb,
            Scenario::BtbAliasingV2,
            Scenario::DeepRsbChain { depth: 20 },
            Scenario::PredictorStateLeak,
        ];
        for s in scenarios {
            let tc = s.build();
            assert_eq!(tc.validate(), Ok(()), "{}", s.label());
        }
    }

    #[test]
    fn table5_labels_match_paper_order() {
        let labels: Vec<String> = Scenario::table5().iter().map(Scenario::label).collect();
        assert_eq!(labels, vec!["V1", "V1.1", "V2", "V4", "V5-ret", "MDS-LFB", "MDS-SB"]);
    }

    #[test]
    fn btb_aliasing_sites_are_congruent_mod_4() {
        let tc = btb_aliasing_v2();
        let indirect_sites: Vec<usize> = tc
            .blocks()
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.terminator, rvz_isa::Terminator::IndirectJmp { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(indirect_sites.len(), 2);
        assert_eq!(
            indirect_sites[0] % 4,
            indirect_sites[1] % 4,
            "train and victim sites must alias in the 2x2/1-bit BTB"
        );
        assert_ne!(indirect_sites[0], indirect_sites[1]);
    }

    #[test]
    fn deep_rsb_chain_respects_stack_capacity() {
        for depth in [17, 20, 30, 64] {
            let tc = deep_rsb_chain(depth);
            let calls = tc
                .blocks()
                .iter()
                .filter(|b| matches!(b.terminator, rvz_isa::Terminator::Call { .. }))
                .count();
            assert!(calls <= 30, "depth {depth}: {calls} calls must fit the sandbox stack");
            assert!(calls > 16, "depth {depth}: chain must exceed the RSB capacity");
            assert_eq!(tc.validate(), Ok(()));
        }
    }

    #[test]
    fn predictor_state_leak_branch_is_architecturally_invisible() {
        let tc = predictor_state_leak();
        let entry = &tc.blocks()[0];
        match &entry.terminator {
            rvz_isa::Terminator::CondJmp { taken, not_taken, .. } => {
                assert_eq!(taken, not_taken, "both arms must target the same block");
            }
            t => panic!("unexpected entry terminator {t:?}"),
        }
    }
}
